"""Shared fixtures: the paper's running example, small helpers, and the
cross-path differential scoring oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates import Avg, Sum
from repro.core.influence import InfluenceScorer
from repro.obs.trace import Tracer
from repro.core.problem import ScorpionQuery
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

#: Counters that must agree between the index-routed scorer and a
#: parallel scorer fed the same batch (routing — including every
#: cost-model decision — happens in the parent either way, and
#: worker-side kernel counters merge back).
ROUTING_COUNTERS = (
    "indexed_predicates", "indexed_ranges", "indexed_sets",
    "indexed_conjunctions", "conjunction_fallbacks", "masked_predicates",
    "incremental_deltas", "full_recomputes", "index_builds",
    "cost_routed_mask", "cost_routed_prefix", "cost_routed_bucket",
    "cost_routed_gather", "cost_routed_conj", "cost_calibrations",
)


def assert_scoring_paths_agree(problem, predicates, *, ignore_holdouts=False,
                               workers=None, batch_chunk=None,
                               expect_pool=False, **scorer_kwargs):
    """The differential scoring oracle: every execution path of the
    influence metric must produce bit-for-bit identical influences.

    Paths driven, given one problem and one predicate list:

    1. scalar ``score()`` per predicate (the reference semantics);
    2. ``score_batch`` with the index disabled (mask-matrix kernel);
    3. ``score_batch`` with the index enabled (planner-routed tiers);
    4. when the ``duckdb`` package is installed: the indexed run again
       with ``backend="duckdb"`` (pushdown state building and view
       construction) — silently skipped otherwise, since the numpy
       fallback that run would degrade to is already leg 3;
    5. when ``workers`` is given: ``score_batch`` with ``workers``
       processes three ways — predicate-axis sharding, group-axis
       sharding (``group_chunk=1`` with the predicate axis left in one
       shard), and 2-D tiling (small predicate chunks × group ranges).

    Also asserts routing-counter consistency: the per-tier split sums
    to ``indexed_predicates``, the mask-only scorer routes nothing, a
    replayed partition of the same unique predicates reproduces every
    routing and cost-model counter exactly (so routing is a
    deterministic function of the batch, not of execution mode), and
    every parallel leg's routing/kernel counters equal the serial
    indexed run's.  ``expect_pool`` additionally requires that the
    parallel legs actually dispatched shards (and, where the tiling
    preconditions hold, group tiles) to worker processes.  Extra
    keyword arguments construct every scorer (e.g.
    ``use_incremental=False``).  Returns the agreed influence vector.
    """
    predicates = list(predicates)
    chunk_kwargs = {} if batch_chunk is None else {"batch_chunk": batch_chunk}

    scalar_kwargs = dict(scorer_kwargs, use_index=False)
    scalar_scorer = InfluenceScorer(problem, cache_scores=False,
                                    **scalar_kwargs)
    scalar = np.asarray([
        scalar_scorer.score(p, ignore_holdouts=ignore_holdouts)
        for p in predicates
    ])

    mask_kwargs = dict(scorer_kwargs, use_index=False)
    masked = InfluenceScorer(problem, cache_scores=False, **mask_kwargs,
                             **chunk_kwargs)
    via_mask = masked.score_batch(predicates, ignore_holdouts=ignore_holdouts)

    indexed = InfluenceScorer(problem, cache_scores=False, **scorer_kwargs,
                              **chunk_kwargs)
    via_index = indexed.score_batch(predicates,
                                    ignore_holdouts=ignore_holdouts)

    np.testing.assert_array_equal(via_mask, scalar)
    np.testing.assert_array_equal(via_index, scalar)

    # Tracing leg: an active span tracer must be bit-for-bit invisible
    # to the influences (annotations read counters, never touch the
    # scoring path) while still recording the batch.
    tracer = Tracer().activate()
    try:
        traced_scorer = InfluenceScorer(problem, cache_scores=False,
                                        **scorer_kwargs, **chunk_kwargs)
        via_traced = traced_scorer.score_batch(
            predicates, ignore_holdouts=ignore_holdouts)
    finally:
        tracer.deactivate()
    np.testing.assert_array_equal(via_traced, scalar)
    if predicates:
        assert any(s["name"] == "score_batch" for s in tracer.export()), \
            "traced batch recorded no score_batch span"

    # DuckDB pushdown leg: the backend contract says routing state
    # building and index views through an engine is bit-for-bit
    # invisible — influences AND routing counters must match the
    # indexed numpy run exactly.
    try:
        import duckdb  # noqa: F401
    except ImportError:
        duckdb = None
    if duckdb is not None:
        duck_kwargs = dict(scorer_kwargs)
        duck_kwargs["backend"] = "duckdb"
        ducked = InfluenceScorer(problem, cache_scores=False,
                                 **duck_kwargs, **chunk_kwargs)
        via_duckdb = ducked.score_batch(predicates,
                                        ignore_holdouts=ignore_holdouts)
        np.testing.assert_array_equal(via_duckdb, scalar)
        for name in ROUTING_COUNTERS:
            assert getattr(ducked.stats, name) == \
                getattr(indexed.stats, name), f"duckdb leg: {name}"

    stats = indexed.stats
    assert stats.indexed_predicates == (
        stats.indexed_ranges + stats.indexed_sets
        + stats.indexed_conjunctions), "per-tier split must sum to total"
    assert masked.stats.indexed_predicates == 0
    if not indexed.uses_index:
        assert stats.indexed_predicates == 0
    assert (stats.indexed_predicates + stats.masked_predicates
            <= len(set(predicates)))
    # Routing-replay guard: re-partitioning the batch's unique scorable
    # predicates must reproduce the recorded routing and cost-model
    # counters exactly — routing is a deterministic function of the
    # batch and the cost model, never of execution mode or history.
    # (Replaces the old unconditional-engagement guard: with cost-based
    # routing, which tier answers a shape depends on the problem size.)
    scorable = [p for p in dict.fromkeys(predicates)
                if indexed._labeled_evaluator.supports_predicate(p)]
    replay = indexed.planner.partition(scorable)
    assert stats.indexed_ranges == len(replay.ranges)
    assert stats.indexed_sets == len(replay.sets)
    assert stats.indexed_conjunctions == len(replay.conjunctions)
    assert stats.masked_predicates == len(replay.masked)
    assert stats.conjunction_fallbacks == replay.conjunction_fallbacks
    for name in ("cost_routed_mask", "cost_routed_prefix",
                 "cost_routed_bucket", "cost_routed_gather",
                 "cost_routed_conj"):
        assert getattr(stats, name) == getattr(replay, name), name

    if workers is not None and workers > 1:
        expect_tiles = (expect_pool and indexed.uses_incremental
                        and len(scorable) > 0
                        and (len(problem.outlier_results) if ignore_holdouts
                             else len(problem.outlier_results)
                             + len(problem.holdout_results)) >= 2)
        parallel_legs = (
            # Predicate-axis sharding (small chunks).
            dict(batch_chunk=batch_chunk or 8, group_chunk=0),
            # Group-axis sharding: predicate axis left whole, one
            # context per tile.
            dict(batch_chunk=max(len(predicates), 1) * 2, group_chunk=1),
            # 2-D tiling: small predicate chunks × group ranges.
            dict(batch_chunk=batch_chunk or 8, group_chunk=1),
        )
        for leg, leg_kwargs in enumerate(parallel_legs):
            parallel = InfluenceScorer(problem, cache_scores=False,
                                       workers=workers,
                                       **leg_kwargs, **scorer_kwargs)
            try:
                via_parallel = parallel.score_batch(
                    predicates, ignore_holdouts=ignore_holdouts)
                np.testing.assert_array_equal(via_parallel, scalar)
                for name in ROUTING_COUNTERS:
                    assert getattr(parallel.stats, name) == \
                        getattr(stats, name), (name, leg)
                # Leg 1 leaves the predicate axis in one shard, so its
                # pool use hinges entirely on group tiling engaging.
                if expect_pool and (leg != 1 or expect_tiles):
                    assert parallel.stats.parallel_shards > 0, \
                        f"pool was never used (leg {leg})"
                if leg > 0 and expect_tiles:
                    assert parallel.stats.parallel_group_shards > 0, \
                        f"group tiles never dispatched (leg {leg})"
            finally:
                parallel.close()
    return via_index


@pytest.fixture
def scoring_oracle():
    """The differential oracle as a fixture (see
    :func:`assert_scoring_paths_agree`)."""
    return assert_scoring_paths_agree

SENSOR_SCHEMA = Schema([
    ColumnSpec("time", ColumnKind.DISCRETE),
    ColumnSpec("sensorid", ColumnKind.DISCRETE),
    ColumnSpec("voltage", ColumnKind.CONTINUOUS),
    ColumnSpec("humidity", ColumnKind.CONTINUOUS),
    ColumnSpec("temp", ColumnKind.CONTINUOUS),
])

# Table 1 of the paper, verbatim.
SENSOR_ROWS = [
    ("11AM", 1, 2.64, 0.4, 34.0),
    ("11AM", 2, 2.65, 0.5, 35.0),
    ("11AM", 3, 2.63, 0.4, 35.0),
    ("12PM", 1, 2.70, 0.3, 35.0),
    ("12PM", 2, 2.70, 0.5, 35.0),
    ("12PM", 3, 2.30, 0.4, 100.0),
    ("1PM", 1, 2.70, 0.3, 35.0),
    ("1PM", 2, 2.70, 0.5, 35.0),
    ("1PM", 3, 2.30, 0.5, 80.0),
]


@pytest.fixture
def sensors_table() -> Table:
    """The paper's Table 1."""
    return Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)


@pytest.fixture
def q1(sensors_table) -> GroupByQuery:
    """The paper's Q1: SELECT avg(temp) FROM sensors GROUP BY time."""
    return GroupByQuery("time", Avg(), "temp")


@pytest.fixture
def paper_problem(sensors_table, q1) -> ScorpionQuery:
    """Table 2's annotations: 12PM and 1PM are too-high outliers, 11AM is
    the hold-out."""
    return ScorpionQuery(
        table=sensors_table,
        query=q1,
        outliers=["12PM", "1PM"],
        holdouts=["11AM"],
        error_vectors=+1.0,
        c=1.0,
    )


def planted_sum_table(seed: int = 0, n_per_group: int = 100,
                      n_groups: int = 4) -> tuple[Table, list, list]:
    """A small SUM workload with a planted hot region in groups g0/g1:
    rows with a1 ∈ [40, 60] and state = 'TX' carry value 50 instead of 1.

    Returns (table, outlier_keys, holdout_keys).
    """
    rng = np.random.default_rng(seed)
    n = n_per_group * n_groups
    groups = np.repeat([f"g{i}" for i in range(n_groups)], n_per_group)
    a1 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(groups, ["g0", "g1"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "g": groups, "a1": a1, "state": state, "value": value,
    })
    return table, ["g0", "g1"], [f"g{i}" for i in range(2, n_groups)]


@pytest.fixture
def sum_problem() -> ScorpionQuery:
    """A planted-subspace SUM problem (anti-monotone, MC-compatible)."""
    table, outliers, holdouts = planted_sum_table()
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Sum(), "value"),
        outliers=outliers,
        holdouts=holdouts,
        error_vectors=+1.0,
        c=0.5,
    )
