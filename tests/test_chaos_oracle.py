"""The chaos differential oracle (ISSUE 9 contract).

Under *any* armed fault schedule, every explain either matches the
fault-free serial run bit-for-bit or surfaces a structured error —
never a hang, never a wrong answer, never a leaked shared-memory
segment.  Each test arms one seeded schedule against a real failure
mode (worker crash, worker death, shard timeout, shared-memory attach
failure, pool-start failure, service OOM), runs the same workload, and
asserts:

* influences equal the fault-free serial reference exactly;
* the pool provably *recovered to parallel* (shards dispatched,
  restart/retry counters moved, circuit closed) rather than silently
  degrading forever;
* no shared-memory segment outlives the scorer.

The ``~g1`` modifier scopes faults to pool generation 0 (the
``SCORPION_POOL_GENERATION`` stamp), so the restarted pool is healthy
by construction — which is exactly what a transient production fault
looks like.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.aggregates import Sum
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.errors import ResourceExhausted
from repro.faults import fault_injection, fault_stats
from repro.obs.metrics import REGISTRY
from repro.parallel import (
    ParallelRecovery,
    assert_no_segment_leaks,
    live_segments,
)
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.service import ExplainService

from tests.conftest import planted_sum_table


def make_problem(c: float = 0.5) -> ScorpionQuery:
    table, outliers, holdouts = planted_sum_table()
    return ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                         outliers=outliers, holdouts=holdouts,
                         error_vectors=+1.0, c=c)


def chaos_batch() -> list[Predicate]:
    """Every routed shape, so a recovered pool re-scores the full tier
    mix: ranges, sets, conjunctions, and the mask kernel."""
    batch = [Predicate([RangeClause("a1", 4.0 * i, 4.0 * i + 22.0)])
             for i in range(24)]
    batch += [Predicate([SetClause("state", ["TX"])]),
              Predicate([SetClause("state", ["CA", "NY"])])]
    batch += [Predicate([RangeClause("a1", 8.0 * i, 8.0 * i + 30.0),
                         SetClause("state", ["TX", "CA"])])
              for i in range(6)]
    batch.append(Predicate.true())
    return batch


def serial_reference(problem, batch) -> np.ndarray:
    """The fault-free serial run every chaos leg must reproduce."""
    scorer = InfluenceScorer(problem, cache_scores=False)
    try:
        return scorer.score_batch(batch)
    finally:
        scorer.close()


def _counter(name: str) -> float:
    metric = REGISTRY.get(name)
    return metric.value if metric is not None else 0.0


@pytest.fixture
def leak_guard():
    """Zero-leaked-shm half of the chaos contract: whatever segments
    existed before the test are the only ones allowed after it."""
    baseline = live_segments()
    yield
    assert_no_segment_leaks("chaos oracle", baseline=baseline)


#: One schedule per injected failure mode.  ``task_timeout`` is only
#: tightened for the hang leg, where the contract is that a stuck
#: worker becomes a timeout + restart, not a stuck caller.
#: ``restarts`` is False for the pool-start leg: a start that never
#: succeeded is a pool *failure*, not a restart, so the retry that
#: finally starts the pool is start #1.  ``parent_fire`` marks legs
#: whose point fires in this process (worker-side fire counts live in
#: the worker and never flow back).
POOL_SCHEDULES = [
    pytest.param("worker.shard:crash@1~g1", None, True, False,
                 id="worker-crash"),
    pytest.param("worker.shard:exit@1~g1", None, True, False,
                 id="worker-death"),
    pytest.param("worker.shard:hang=30@1~g1", 2.0, True, False,
                 id="shard-timeout"),
    pytest.param("shm.attach:oserror@1..~g1", None, True, False,
                 id="shm-attach"),
    pytest.param("pool.start:oserror@1~g1", None, False, True,
                 id="pool-start"),
]


class TestPoolChaos:
    @pytest.mark.parametrize("schedule,task_timeout,restarts,parent_fire",
                             POOL_SCHEDULES)
    def test_faulted_batch_matches_serial_and_repairs_pool(
            self, schedule, task_timeout, restarts, parent_fire, leak_guard):
        problem = make_problem()
        batch = chaos_batch()
        expected = serial_reference(problem, batch)

        restarts0 = _counter("scorpion_pool_restarts_total")
        failures0 = _counter("scorpion_pool_failures_total")
        retries0 = _counter("scorpion_pool_retries_total")

        with fault_injection(schedule):
            scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                     batch_chunk=8, task_timeout=task_timeout)
            # A generous injected budget (and no backoff sleeps): the
            # schedules above break generation-0 pools only, so the
            # retry path must land on a healthy pool well within it.
            scorer._recovery = ParallelRecovery(retries=4, restarts=50,
                                                backoff_base=0.0)
            try:
                with warnings.catch_warnings():
                    # Absorbed transparently or not at all: a retryable
                    # fault must not leak a degradation warning.
                    warnings.simplefilter("error")
                    got = scorer.score_batch(batch)
                np.testing.assert_array_equal(got, expected)
                # Recovery to *parallel* is part of the contract — the
                # batch must not have quietly degraded to serial.
                assert scorer.stats.parallel_shards > 0
                assert scorer.uses_parallel
                assert scorer.parallel_health()["state"] == "parallel"
                expected_starts = 2 if restarts else 1
                assert scorer.parallel_health()["pool_starts"] \
                    >= expected_starts
                if parent_fire:
                    stats = fault_stats()
                    point = schedule.split(":", 1)[0]
                    assert stats[point]["fired"] >= 1, \
                        f"schedule never fired: {stats}"
            finally:
                scorer.close()

        # The batch retried at least once, after at least one counted
        # pool failure; worker-side legs additionally restarted a pool
        # that had started successfully.
        assert _counter("scorpion_pool_failures_total") >= failures0 + 1
        assert _counter("scorpion_pool_retries_total") >= retries0 + 1
        if restarts:
            assert _counter("scorpion_pool_restarts_total") >= restarts0 + 1

    def test_back_to_back_batches_after_repair(self, leak_guard):
        """The repaired pool is a real pool: later batches keep running
        parallel with no further restarts."""
        problem = make_problem()
        batch = chaos_batch()
        expected = serial_reference(problem, batch)
        with fault_injection("worker.shard:crash@1~g1"):
            scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                     batch_chunk=8)
            scorer._recovery = ParallelRecovery(retries=4, restarts=50,
                                                backoff_base=0.0)
            try:
                np.testing.assert_array_equal(scorer.score_batch(batch),
                                              expected)
                starts = scorer.parallel_health()["pool_starts"]
                shards = scorer.stats.parallel_shards
                np.testing.assert_array_equal(scorer.score_batch(batch),
                                              expected)
                assert scorer.parallel_health()["pool_starts"] == starts
                assert scorer.stats.parallel_shards > shards
            finally:
                scorer.close()

    def test_exhausted_budget_still_answers_serially(self, leak_guard):
        """A fault on *every* generation exhausts the retry budget; the
        batch must still come back bit-for-bit right (serial), with the
        degradation counted and warned."""
        problem = make_problem()
        batch = chaos_batch()
        expected = serial_reference(problem, batch)
        degraded0 = _counter("scorpion_degraded_batches_total")
        with fault_injection("worker.shard:crash@1.."):
            scorer = InfluenceScorer(problem, cache_scores=False, workers=2,
                                     batch_chunk=8)
            scorer._recovery = ParallelRecovery(retries=1, restarts=50,
                                                backoff_base=0.0)
            try:
                with pytest.warns(RuntimeWarning, match="scoring serial"):
                    got = scorer.score_batch(batch)
                np.testing.assert_array_equal(got, expected)
            finally:
                scorer.close()
        assert _counter("scorpion_degraded_batches_total") >= degraded0 + 1


def _explanation_key(result):
    """Everything observable about a result's answer, for bit-for-bit
    comparison across chaos legs."""
    return [(str(e.predicate), e.influence, e.n_matched,
             sorted(e.updated_outliers.items()),
             sorted(e.updated_holdouts.items()))
            for e in result.explanations]


class TestServiceChaos:
    def _request(self, service):
        table, outliers, holdouts = planted_sum_table()
        return service.explain_request(
            table, GroupByQuery("g", Sum(), "value"), outliers,
            holdouts=holdouts, error_vectors=+1.0, c=0.5)

    def test_oom_sheds_and_retries_to_the_same_answer(self, leak_guard):
        with ExplainService(algorithm="dt") as service:
            reference = _explanation_key(self._request(service))
        oom0 = _counter("scorpion_oom_retries_total")
        with ExplainService(algorithm="dt") as service:
            with fault_injection("service.build:memerror@1"):
                cold = self._request(service)
            warm = self._request(service)
            assert _explanation_key(cold) == reference
            assert _explanation_key(warm) == reference
            assert cold.scorer_stats["service_cache_hit"] == 0
            assert warm.scorer_stats["service_cache_hit"] == 1
        assert _counter("scorpion_oom_retries_total") == oom0 + 1

    def test_double_oom_is_a_structured_error_not_a_wedge(self, leak_guard):
        with ExplainService(algorithm="dt") as service:
            with fault_injection("service.build:memerror@1..2"):
                with pytest.raises(ResourceExhausted, match="out of memory"):
                    self._request(service)
            # The failed build must not poison the service: the same
            # request succeeds once the fault clears.
            result = self._request(service)
            assert result.explanations
            assert service.health()["ok"]

    def test_checkout_fault_leaves_service_healthy(self, leak_guard):
        with ExplainService(algorithm="dt") as service:
            with fault_injection("service.checkout:oserror@1"):
                with pytest.raises(OSError, match="injected"):
                    self._request(service)
            reference = _explanation_key(self._request(service))
            assert reference  # recovered: real answer after the fault
