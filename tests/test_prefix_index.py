"""Index-vs-mask-vs-scalar equivalence for the prefix-aggregate index.

The routing contract (see :mod:`repro.index`): a single-clause range
predicate scores identically — exact float equality — whether it goes
through the index fast path, the batch mask-matrix kernel, or scalar
``score()``.  These tests drive all three paths over random ranges,
including empty ranges, whole-group deletion, NaN-bearing attribute
columns, and duplicate values sitting exactly on clause boundaries, on
both index tiers (O(1) prefix differences for integer-summable states,
ascending-row gathers for general floats).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Avg, Count, Median, StdDev, Sum
from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.naive import NaivePartitioner
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import PredicateError
from repro.eval.runner import RunRecord
from repro.index import (
    GroupAttributeIndex,
    PrefixAggregateIndex,
    exactly_summable,
    force_index_model,
)
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from tests.conftest import assert_scoring_paths_agree

SCHEMA = Schema([
    ColumnSpec("g", ColumnKind.DISCRETE),
    ColumnSpec("a1", ColumnKind.CONTINUOUS),
    ColumnSpec("a2", ColumnKind.CONTINUOUS),
    ColumnSpec("v", ColumnKind.CONTINUOUS),
])

#: a1 is drawn from this small grid so duplicate values land exactly on
#: clause boundaries all the time.
A1_GRID = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]


def build_problem(aggregate, *, integer_values: bool = False,
                  nan_rate: float = 0.0, rows_per_group: int = 40,
                  perturbation: str = "delete", c: float = 0.5,
                  seed: int = 0) -> ScorpionQuery:
    rng = np.random.default_rng(seed)
    rows = []
    for group, shift in (("o1", 4.0), ("o2", 2.0), ("h1", 0.0)):
        for _ in range(rows_per_group):
            a1 = float(rng.choice(A1_GRID))
            a2 = float(rng.uniform(0.0, 10.0))
            if nan_rate and rng.random() < nan_rate:
                a2 = float("nan")
            if integer_values:
                value = float(rng.integers(0, 50)) + shift
            else:
                value = float(rng.normal(10.0, 3.0)) + shift * a1
            rows.append((group, a1, a2, value))
    table = Table.from_rows(SCHEMA, rows)
    query = GroupByQuery("g", aggregate, "v")
    return ScorpionQuery(table, query, outliers=["o1", "o2"],
                         holdouts=["h1"], error_vectors=+1.0, c=c,
                         perturbation=perturbation)


@st.composite
def range_predicates(draw) -> Predicate:
    """Single-clause ranges over a1/a2 with boundaries that frequently
    coincide with duplicated data values; occasionally empty (lo == hi,
    closed, off-grid) or whole-domain (covering every a1 value)."""
    attribute = draw(st.sampled_from(["a1", "a2"]))
    lo = draw(st.one_of(st.sampled_from(A1_GRID),
                        st.floats(-1.0, 9.0, allow_nan=False)))
    width = draw(st.one_of(st.just(0.0), st.sampled_from([1.0, 2.0, 9.0]),
                           st.floats(0.0, 5.0, allow_nan=False)))
    hi = lo + width
    # A degenerate range (including widths that underflow into lo) must
    # be closed to be constructible.
    include_hi = draw(st.booleans()) or hi == lo
    return Predicate([RangeClause(attribute, lo, hi, include_hi)])


def assert_three_paths_equal(problem: ScorpionQuery,
                             predicates: list[Predicate],
                             ignore_holdouts: bool = False) -> np.ndarray:
    """Drive the shared differential oracle (scalar / mask / index), the
    historical three-path check this file was built around."""
    return assert_scoring_paths_agree(problem, predicates,
                                      ignore_holdouts=ignore_holdouts)


class TestExactSummable:
    def test_count_states_qualify(self):
        assert exactly_summable(np.ones((100, 1)))

    def test_integer_states_qualify(self):
        states = np.column_stack([np.arange(50.0), np.arange(50.0) ** 2,
                                  np.ones(50)])
        assert exactly_summable(states)

    def test_fractional_states_do_not(self):
        assert not exactly_summable(np.asarray([[0.5, 1.0]]))

    def test_magnitude_budget(self):
        assert not exactly_summable(np.asarray([[2.0 ** 53, 1.0]]))

    def test_nan_states_do_not(self):
        assert not exactly_summable(np.asarray([[np.nan, 1.0]]))

    def test_empty_qualifies(self):
        assert exactly_summable(np.empty((0, 2)))


class TestGroupAttributeIndex:
    """Slice membership and removed states vs the mask reference."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_mask_semantics(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        n = data.draw(st.integers(1, 60))
        values = rng.choice(A1_GRID, size=n)
        nan_count = data.draw(st.integers(0, 3))
        values[:nan_count] = np.nan
        states = np.column_stack([rng.normal(size=n), np.ones(n)])
        lo = data.draw(st.sampled_from(A1_GRID))
        hi = lo + data.draw(st.sampled_from([0.0, 1.0, 3.0, 8.0]))
        include_hi = data.draw(st.booleans()) or hi == lo
        clause = RangeClause("a1", lo, hi, include_hi)

        index = GroupAttributeIndex(values, states,
                                    exact=exactly_summable(states))
        a, b = index.slice_bounds(np.asarray([lo]), np.asarray([hi]),
                                  np.asarray([include_hi]))
        mask = clause.mask_values(values)
        assert int(b[0] - a[0]) == int(np.count_nonzero(mask))
        assert sorted(index.order[a[0]:b[0]]) == list(np.flatnonzero(mask))
        removed = index.removed_states(a, b, states)
        np.testing.assert_array_equal(removed[0], states[mask].sum(axis=0))

    def test_prefix_tier_difference_is_exact(self):
        rng = np.random.default_rng(7)
        values = rng.choice(A1_GRID, size=200)
        states = np.column_stack([
            rng.integers(0, 1000, size=200).astype(np.float64),
            np.ones(200),
        ])
        index = GroupAttributeIndex(values, states, exact=True)
        assert index.uses_prefix
        for lo, hi in [(0.0, 3.0), (2.0, 2.0), (5.0, 100.0), (8.5, 9.0)]:
            a, b = index.slice_bounds(np.asarray([lo]), np.asarray([hi]),
                                      np.asarray([True]))
            mask = RangeClause("a1", lo, hi).mask_values(values)
            np.testing.assert_array_equal(
                index.removed_states(a, b, states)[0],
                states[mask].sum(axis=0) if mask.any() else np.zeros(2))


class TestThreePathEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=10))
    def test_gather_tier_avg(self, predicates):
        assert_three_paths_equal(build_problem(Avg()), predicates)

    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=10))
    def test_gather_tier_stddev(self, predicates):
        assert_three_paths_equal(build_problem(StdDev()), predicates)

    @settings(max_examples=25, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=10))
    def test_prefix_tier_sum(self, predicates):
        assert_three_paths_equal(
            build_problem(Sum(), integer_values=True), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=8))
    def test_count_single_component_states(self, predicates):
        assert_three_paths_equal(build_problem(Count()), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=8))
    def test_mean_perturbation(self, predicates):
        assert_three_paths_equal(
            build_problem(Avg(), perturbation="mean"), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=8))
    def test_ignore_holdouts(self, predicates):
        assert_three_paths_equal(build_problem(Avg()), predicates,
                                 ignore_holdouts=True)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=8),
           c=st.sampled_from([0.0, 0.3, 0.5, 1.0]))
    def test_fractional_c(self, predicates, c):
        assert_three_paths_equal(build_problem(Avg(), c=c), predicates)

    @settings(max_examples=15, deadline=None)
    @given(predicates=st.lists(range_predicates(), max_size=8))
    def test_nan_bearing_column(self, predicates):
        assert_three_paths_equal(
            build_problem(Avg(), nan_rate=0.2), predicates)


class TestEdgeCases:
    def test_empty_range_scores_zero(self):
        nothing = Predicate([RangeClause("a1", 8.25, 8.5)])
        values = assert_three_paths_equal(build_problem(Avg()), [nothing])
        assert values[0] == 0.0

    def test_whole_group_deletion_is_invalid(self):
        everything = Predicate([RangeClause("a1", -10.0, 100.0)])
        values = assert_three_paths_equal(build_problem(Avg()), [everything])
        assert values[0] == INVALID_INFLUENCE

    def test_whole_group_deletion_sum_has_empty_value(self):
        everything = Predicate([RangeClause("a1", -10.0, 100.0)])
        values = assert_three_paths_equal(
            build_problem(Sum(), integer_values=True), [everything])
        assert np.isfinite(values[0])

    def test_nan_rows_never_match(self):
        problem = build_problem(Avg(), nan_rate=1.0)
        any_a2 = Predicate([RangeClause("a2", -1e9, 1e9)])
        values = assert_three_paths_equal(problem, [any_a2])
        assert values[0] == 0.0

    def test_duplicate_boundary_open_vs_closed(self):
        problem = build_problem(Avg())
        closed = Predicate([RangeClause("a1", 2.0, 4.0, include_hi=True)])
        open_top = Predicate([RangeClause("a1", 2.0, 4.0, include_hi=False)])
        values = assert_three_paths_equal(problem, [closed, open_top])
        assert values[0] != values[1]  # the duplicated boundary value matters


class TestRoutingAndPlanner:
    def test_mixed_batch_routes_by_shape(self):
        # force_index_model pins the tier choice: on a fixture this
        # small the real cost model (rightly) sends conjunctions to the
        # mask kernel.
        problem = build_problem(Avg())
        scorer = InfluenceScorer(problem, cache_scores=False,
                                 cost_model=force_index_model())
        batch = [
            Predicate([RangeClause("a1", 1.0, 3.0)]),              # range tier
            Predicate([RangeClause("a2", 1.0, 3.0)]),              # range tier
            Predicate([RangeClause("a1", 1.0, 3.0),
                       RangeClause("a2", 0.0, 5.0)]),              # conjunction
            Predicate.true(),                                      # masked
            Predicate([SetClause("g", ["o1"])]),                   # scalar
        ]
        reference = InfluenceScorer(problem, cache_scores=False,
                                    use_index=False)
        np.testing.assert_array_equal(
            scorer.score_batch(batch), reference.score_batch(batch))
        assert scorer.stats.indexed_predicates == 3
        assert scorer.stats.indexed_ranges == 2
        assert scorer.stats.indexed_conjunctions == 1
        assert scorer.stats.indexed_sets == 0
        assert scorer.stats.conjunction_fallbacks == 0
        # TRUE takes the mask kernel; the group-by clause is outside the
        # labeled evaluator → scalar fallback.
        assert scorer.stats.masked_predicates == 1
        assert scorer.stats.mask_scores == 2

    def test_planner_rejects_black_box_aggregates(self):
        scorer = InfluenceScorer(build_problem(Median()), cache_scores=False)
        assert not scorer.uses_index
        assert scorer.planner.fast_clause(
            Predicate([RangeClause("a1", 0.0, 2.0)])) is None

    def test_use_index_false_disables_routing(self):
        scorer = InfluenceScorer(build_problem(Avg()), cache_scores=False,
                                 use_index=False)
        assert not scorer.uses_index
        scorer.score_batch([Predicate([RangeClause("a1", 0.0, 2.0)])])
        assert scorer.stats.indexed_predicates == 0
        assert scorer.stats.masked_predicates == 1

    def test_lazy_build_and_prepare(self):
        scorer = InfluenceScorer(build_problem(Avg()))
        assert scorer.stats.index_builds == 0
        scorer.score_batch([Predicate([RangeClause("a1", 0.0, 2.0)])])
        assert scorer.stats.index_builds == 1  # only a1, built on demand
        # prepare covers the remaining continuous A_rest attributes,
        # building each exactly once.
        built = scorer.prepare_index()
        assert set(built) == {"a1", "a2"}
        assert scorer.stats.index_builds == 2
        assert scorer.prepare_index() == built
        assert scorer.stats.index_builds == 2
        assert scorer.stats.index_build_seconds >= 0.0

    def test_prepare_index_without_index_is_noop(self):
        scorer = InfluenceScorer(build_problem(Median()))
        assert scorer.prepare_index() == ()

    def test_prefix_tier_engages_for_integer_states(self):
        scorer = InfluenceScorer(build_problem(Sum(), integer_values=True))
        scorer.prepare_index(["a1"])
        index = scorer.planner.index
        assert isinstance(index, PrefixAggregateIndex)
        assert index.prefix_tier_groups("a1") == 3

    def test_gather_tier_for_float_states(self):
        scorer = InfluenceScorer(build_problem(Avg()))
        scorer.prepare_index(["a1"])
        assert scorer.planner.index.prefix_tier_groups("a1") == 0

    def test_cache_coherent_across_paths(self):
        scorer = InfluenceScorer(build_problem(Avg()))
        predicate = Predicate([RangeClause("a1", 1.0, 4.0)])
        batched = scorer.score_batch([predicate])[0]
        before = scorer.stats.cache_hits
        assert scorer.score(predicate) == batched
        assert scorer.stats.cache_hits == before + 1


class TestBatchChunkKnob:
    def test_constructor_argument(self):
        scorer = InfluenceScorer(build_problem(Avg()), batch_chunk=16)
        assert scorer.batch_chunk == 16

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("SCORPION_BATCH_CHUNK", "32")
        assert InfluenceScorer(build_problem(Avg())).batch_chunk == 32
        # An explicit argument wins over the environment.
        scorer = InfluenceScorer(build_problem(Avg()), batch_chunk=8)
        assert scorer.batch_chunk == 8

    def test_builtin_default(self, monkeypatch):
        monkeypatch.delenv("SCORPION_BATCH_CHUNK", raising=False)
        scorer = InfluenceScorer(build_problem(Avg()))
        assert scorer.batch_chunk == InfluenceScorer.BATCH_CHUNK

    def test_rejects_nonpositive(self):
        with pytest.raises(PredicateError):
            InfluenceScorer(build_problem(Avg()), batch_chunk=0)

    def test_chunked_index_path_matches(self):
        problem = build_problem(Avg())
        predicates = [Predicate([RangeClause("a1", 0.0, 1.0 + 0.5 * i)])
                      for i in range(23)]
        small = InfluenceScorer(problem, cache_scores=False, batch_chunk=4)
        large = InfluenceScorer(problem, cache_scores=False)
        np.testing.assert_array_equal(small.score_batch(predicates),
                                      large.score_batch(predicates))
        assert small.stats.indexed_predicates == len(predicates)


class TestEndToEndSurface:
    def test_scorpion_result_carries_routing_counters(self):
        problem = build_problem(Sum(), integer_values=True)
        partitioner = NaivePartitioner(time_budget=None, max_evaluations=80,
                                       max_clauses=1)
        scorpion = Scorpion(partitioner=partitioner, use_cache=False)
        result = scorpion.explain(problem)
        assert result.scorer_stats["indexed_predicates"] > 0
        assert result.scorer_stats["index_builds"] > 0
        assert result.scorer_stats["index_build_seconds"] >= 0.0

    def test_index_does_not_change_explanations(self):
        problem = build_problem(Avg())
        partitioner = NaivePartitioner(time_budget=None, max_evaluations=120)
        with_index = Scorpion(partitioner=partitioner,
                              use_cache=False).explain(problem)
        partitioner = NaivePartitioner(time_budget=None, max_evaluations=120)
        without = Scorpion(partitioner=partitioner, use_cache=False,
                           use_index=False).explain(problem)
        assert with_index.best.predicate == without.best.predicate
        assert with_index.best.influence == without.best.influence
        assert without.scorer_stats["indexed_predicates"] == 0

    def test_run_record_routing_properties(self):
        record = RunRecord(algorithm="naive", c=0.5, predicate=None,
                           influence=0.0, runtime=0.0,
                           scorer_stats={"indexed_predicates": 7,
                                         "indexed_ranges": 4,
                                         "indexed_sets": 2,
                                         "indexed_conjunctions": 1,
                                         "masked_predicates": 3})
        assert record.indexed_predicates == 7
        assert record.indexed_ranges == 4
        assert record.indexed_sets == 2
        assert record.indexed_conjunctions == 1
        assert record.masked_predicates == 3
        assert RunRecord(algorithm="naive", c=0.5, predicate=None,
                         influence=0.0, runtime=0.0).indexed_predicates == 0
