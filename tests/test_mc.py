"""Unit tests for the MC partitioner (paper Section 6.2)."""

import numpy as np
import pytest

from repro.aggregates import Avg, Median, Sum
from repro.core.influence import InfluenceScorer
from repro.core.mc import MCPartitioner, _OutlierIndex
from repro.core.problem import ScorpionQuery
from repro.errors import PartitionerError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from tests.conftest import planted_sum_table


class TestValidation:
    def test_requires_independent(self, sensors_table):
        query = GroupByQuery("time", Median(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"])
        with pytest.raises(PartitionerError, match="independent"):
            MCPartitioner().run(problem)

    def test_check_failure_rejected(self):
        table = Table.from_columns(
            Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                    ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            {"g": ["a", "a", "b", "b"], "x": [1.0, 2, 3, 4],
             "v": [-1.0, 2.0, 3.0, 4.0]})
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "v"),
                                outliers=["a"], holdouts=["b"])
        with pytest.raises(PartitionerError, match="check failed"):
            MCPartitioner().run(problem)

    def test_check_can_be_disabled(self):
        table = Table.from_columns(
            Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                    ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            {"g": ["a", "a", "b", "b"], "x": [1.0, 2, 3, 4],
             "v": [-1.0, 20.0, 3.0, 4.0]})
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "v"),
                                outliers=["a"], holdouts=["b"])
        result = MCPartitioner(require_check=False, n_bins=2).run(problem)
        assert result.best is not None

    def test_avg_fails_check(self, paper_problem):
        # AVG declares no anti-monotonicity: check() is False.
        with pytest.raises(PartitionerError, match="check failed"):
            MCPartitioner().run(paper_problem)

    def test_bad_n_bins_rejected(self):
        with pytest.raises(PartitionerError):
            MCPartitioner(n_bins=0)


class TestUnits:
    def test_units_restricted_to_outlier_support(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        mc = MCPartitioner(n_bins=10)
        cells = mc._initial_units(sum_problem, scorer)
        assert all(cell.support for cell in cells)
        attrs = {cell.predicate.attributes[0] for cell in cells}
        assert attrs == {"a1", "state"}

    def test_unit_supports_partition_outlier_rows(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        mc = MCPartitioner(n_bins=10)
        cells = mc._initial_units(sum_problem, scorer)
        n_outlier_rows = sum(ctx.size for ctx in scorer.outlier_contexts)
        for attribute in ("a1", "state"):
            positions = [p for cell in cells
                         if cell.predicate.attributes[0] == attribute
                         for p in cell.support]
            assert sorted(positions) == list(range(n_outlier_rows))


class TestIntersect:
    def test_intersect_joins_across_attributes(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        mc = MCPartitioner(n_bins=5)
        cells = mc._initial_units(sum_problem, scorer)
        refined = mc._intersect(cells)
        assert refined
        for cell in refined:
            assert cell.predicate.num_clauses == 2
            assert cell.support

    def test_intersect_support_is_set_intersection(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        mc = MCPartitioner(n_bins=5)
        cells = mc._initial_units(sum_problem, scorer)
        by_attr = {}
        for cell in cells:
            by_attr.setdefault(cell.predicate.attributes[0], []).append(cell)
        a_cell = by_attr["a1"][0]
        for s_cell in by_attr["state"]:
            expected = a_cell.support & s_cell.support
            joined = [c for c in mc._intersect([a_cell, s_cell])]
            if expected:
                assert len(joined) == 1
                assert joined[0].support == expected
            else:
                assert not joined

    def test_same_attribute_cells_never_join(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        mc = MCPartitioner(n_bins=5)
        cells = [c for c in mc._initial_units(sum_problem, scorer)
                 if c.predicate.attributes[0] == "a1"]
        assert mc._intersect(cells) == []


class TestOutlierIndex:
    def test_refinement_bound_matches_scorer(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        index = _OutlierIndex(scorer)
        mc = MCPartitioner(n_bins=10)
        for cell in mc._initial_units(sum_problem, scorer)[:20]:
            expected = scorer.refinement_bound(cell.predicate)
            assert index.refinement_bound(cell) == pytest.approx(expected)


class TestSearch:
    def test_finds_planted_subspace_at_c1(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=200)
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                                outliers=outliers, holdouts=holdouts,
                                error_vectors=+1.0, c=1.0)
        result = MCPartitioner(n_bins=10).run(problem)
        best = result.best
        assert best is not None
        state_clause = best.predicate.clause_for("state")
        assert state_clause is not None and state_clause.values == frozenset(["TX"])
        a1 = best.predicate.clause_for("a1")
        assert a1 is not None and a1.lo >= 30 and a1.hi <= 70

    def test_low_c_returns_coarser_predicate(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=200)
        low = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                            outliers=outliers, holdouts=holdouts,
                            error_vectors=+1.0, c=0.0)
        high = low.with_c(1.0)
        low_best = MCPartitioner(n_bins=10).run(low).best
        high_best = MCPartitioner(n_bins=10).run(high).best
        low_rows = low_best.predicate.mask(low.table).sum()
        high_rows = high_best.predicate.mask(high.table).sum()
        assert low_rows >= high_rows

    def test_ranked_descending_and_finite(self, sum_problem):
        result = MCPartitioner(n_bins=8).run(sum_problem)
        influences = [sp.influence for sp in result.ranked]
        assert influences == sorted(influences, reverse=True)
        assert all(np.isfinite(i) for i in influences)

    def test_max_iterations_limits_dimensionality(self, sum_problem):
        result = MCPartitioner(n_bins=8, max_iterations=1).run(sum_problem)
        assert all(sp.predicate.num_clauses <= 1 for sp in result.ranked)

    def test_level_cap_applies(self, sum_problem):
        result = MCPartitioner(n_bins=8, max_predicates_per_level=3).run(sum_problem)
        assert result.best is not None


class TestPruning:
    def test_prune_keeps_everything_without_incumbent(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        index = _OutlierIndex(scorer)
        mc = MCPartitioner(n_bins=6)
        cells = mc._initial_units(sum_problem, scorer)
        assert mc._prune(cells, index, float("-inf")) == cells

    def test_prune_drops_hopeless_cells(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        index = _OutlierIndex(scorer)
        mc = MCPartitioner(n_bins=6)
        cells = mc._initial_units(sum_problem, scorer)
        huge = max(index.refinement_bound(c) for c in cells) + 1.0
        assert mc._prune(cells, index, huge) == []

    def test_prune_never_drops_the_optimum_region(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=200)
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                                outliers=outliers, holdouts=holdouts,
                                error_vectors=+1.0, c=1.0)
        scorer = InfluenceScorer(problem)
        index = _OutlierIndex(scorer)
        mc = MCPartitioner(n_bins=10)
        cells = mc._initial_units(problem, scorer)
        optimum = Predicate([RangeClause("a1", 40, 60), SetClause("state", ["TX"])])
        incumbent = scorer.score(optimum)
        kept = mc._prune(cells, index, incumbent)
        tx_kept = [c for c in kept
                   if c.predicate.clause_for("state") is not None
                   and "TX" in c.predicate.clause_for("state").values]
        assert tx_kept, "the TX unit must survive pruning at the optimum"
