"""Unit tests for the SYNTH generator (paper Section 8.1)."""

import numpy as np
import pytest

from repro.datasets.synth import (
    LABEL_HIGH,
    LABEL_MEDIUM,
    LABEL_NORMAL,
    SynthConfig,
    generate_synth,
    make_synth,
)
from repro.errors import DatasetError


def small(n_dims=2, mu=80.0, seed=0, per_group=200):
    return generate_synth(SynthConfig(n_dims=n_dims, mu=mu, seed=seed,
                                      tuples_per_group=per_group))


class TestStructure:
    def test_row_count(self):
        ds = small()
        assert len(ds.table) == 10 * 200

    def test_schema(self):
        ds = small(n_dims=3)
        assert ds.table.schema.names == ("ad", "a1", "a2", "a3", "av")
        assert ds.table.schema["ad"].is_discrete
        assert ds.table.schema["av"].is_continuous

    def test_half_groups_are_outliers(self):
        ds = small()
        assert len(ds.outlier_keys) == 5
        assert len(ds.holdout_keys) == 5
        assert not set(ds.outlier_keys) & set(ds.holdout_keys)

    def test_values_clipped_non_negative(self):
        ds = small(mu=30.0)
        assert float(ds.table.values("av").min()) >= 0.0

    def test_dimension_domain(self):
        ds = small()
        for dim in ("a1", "a2"):
            values = ds.table.values(dim)
            assert values.min() >= 0.0 and values.max() <= 100.0

    def test_label_counts_follow_fractions(self):
        ds = small(per_group=400)
        per_group = 400
        n_outer = round(0.25 * per_group)
        n_inner = round(0.25 * n_outer)
        assert int((ds.labels == LABEL_HIGH).sum()) == 5 * n_inner
        assert int((ds.labels == LABEL_MEDIUM).sum()) == 5 * (n_outer - n_inner)

    def test_holdout_groups_all_normal(self):
        ds = small()
        holdout_mask = ds.table.column("ad").membership_mask(ds.holdout_keys)
        assert (ds.labels[holdout_mask] == LABEL_NORMAL).all()

    def test_reproducible(self):
        assert small(seed=3).table == small(seed=3).table

    def test_seed_changes_data(self):
        assert small(seed=1).table != small(seed=2).table


class TestCubes:
    def test_inner_nested_in_outer(self):
        ds = small()
        for (o_lo, o_hi), (i_lo, i_hi) in zip(ds.outer_cube, ds.inner_cube):
            assert o_lo <= i_lo <= i_hi <= o_hi

    def test_high_tuples_inside_inner_cube(self):
        ds = small()
        inner = ds.truth_inner()
        high = ds.labels == LABEL_HIGH
        assert (inner[high]).all()

    def test_medium_tuples_in_shell(self):
        ds = small()
        medium = ds.labels == LABEL_MEDIUM
        outer = ds.truth_outer()
        inner = ds.truth_inner()
        assert outer[medium].all()
        assert not inner[medium].any()

    def test_spatial_truth_contains_label_truth(self):
        ds = small()
        assert (~ds.label_outer() | ds.truth_outer()).all()
        assert (~ds.label_inner() | ds.truth_inner()).all()


class TestAggregateShape:
    def test_outlier_groups_have_higher_sums(self):
        ds = small(per_group=400)
        results = ds.query().execute(ds.table)
        outlier_values = [results.by_key(k).value for k in ds.outlier_keys]
        holdout_values = [results.by_key(k).value for k in ds.holdout_keys]
        assert min(outlier_values) > max(holdout_values)

    def test_scorpion_query_wires_annotations(self):
        ds = small()
        problem = ds.scorpion_query(c=0.3)
        assert problem.c == 0.3
        assert len(problem.outlier_results) == 5
        assert set(problem.attributes) == {"a1", "a2"}

    def test_outlier_row_indices(self):
        ds = small()
        rows = ds.outlier_row_indices()
        assert len(rows) == 5 * 200
        keys = set(ds.table.values("ad")[rows])
        assert keys == set(ds.outlier_keys)


class TestNamedInstances:
    def test_easy_hard_mu(self):
        assert make_synth(2, "easy", tuples_per_group=50).config.mu == 80.0
        assert make_synth(2, "hard", tuples_per_group=50).config.mu == 30.0

    def test_dimensionality(self):
        ds = make_synth(4, "easy", tuples_per_group=50)
        assert ds.config.n_dims == 4
        assert len(ds.outer_cube) == 4

    def test_unknown_difficulty_rejected(self):
        with pytest.raises(DatasetError):
            make_synth(2, "medium")


class TestConfigValidation:
    def test_bad_dims(self):
        with pytest.raises(DatasetError):
            SynthConfig(n_dims=0)

    def test_bad_groups(self):
        with pytest.raises(DatasetError):
            SynthConfig(n_groups=1)

    def test_bad_fractions(self):
        with pytest.raises(DatasetError):
            SynthConfig(outer_fraction=1.5)

    def test_bad_domain(self):
        with pytest.raises(DatasetError):
            SynthConfig(domain_lo=10, domain_hi=0)
