"""Unit and differential tests for the resident ExplainService.

The load-bearing contract: a warm (cache-hit) ``ExplainService.explain``
returns a result bit-for-bit equal to a cold one-shot
``Scorpion.explain`` of the same problem — explanations, influences,
matched rows, updated outputs, and every scorer counter outside
:data:`repro.service.CACHE_STAT_KEYS`.  The oracle legs run MC and
DT-without-cache (deterministic replay); DT *with* its cross-``c``
cache is exercised separately because warm-started merges are "at
least as good", not bit-identical (see ``tests/test_cache.py``).
"""

import asyncio
import time

import pytest

from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import ScorpionError
from repro.eval.runner import sweep_c
from repro.query.groupby import GroupByQuery
from repro.aggregates import Sum
from repro.service import (
    CACHE_STAT_KEYS,
    ExplainService,
    problem_key,
    request_key,
    table_fingerprint,
)

from tests.conftest import planted_sum_table


def make_sum_problem(c: float = 0.5, **table_kwargs) -> ScorpionQuery:
    table, outliers, holdouts = planted_sum_table(**table_kwargs)
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Sum(), "value"),
        outliers=outliers,
        holdouts=holdouts,
        error_vectors=+1.0,
        c=c,
    )


def explanation_image(result):
    """Everything the bit-for-bit contract covers about explanations."""
    return [(e.predicate, e.influence, e.n_matched,
             e.updated_outliers, e.updated_holdouts)
            for e in result.explanations]


def assert_warm_equals_cold(warm, cold):
    """The differential oracle: identical explanations AND identical
    scorer counters, excluding exactly the documented cache-effect and
    timing keys."""
    assert explanation_image(warm) == explanation_image(cold)
    assert warm.algorithm == cold.algorithm
    assert warm.n_candidates == cold.n_candidates
    keys = set(warm.scorer_stats) | set(cold.scorer_stats)
    diverging = {
        k for k in keys - CACHE_STAT_KEYS
        if warm.scorer_stats.get(k) != cold.scorer_stats.get(k)
        # *_seconds keys are wall-clock; everything else must match.
        and not k.endswith("_seconds")
    }
    assert not diverging, f"counters diverge outside CACHE_STAT_KEYS: {sorted(diverging)}"


class TestDifferentialOracle:
    @pytest.mark.parametrize("kwargs", [
        {"algorithm": "mc"},
        {"algorithm": "dt", "use_cache": False},
        {"algorithm": "naive"},
    ], ids=["mc", "dt-nocache", "naive"])
    def test_warm_call_is_bit_for_bit_cold(self, kwargs):
        problem = make_sum_problem()
        cold = Scorpion(**kwargs).explain(problem)
        with ExplainService(**kwargs) as service:
            first = service.explain(problem)
            warm = service.explain(problem)
        assert not first.scorer_stats["service_cache_hit"]
        assert warm.scorer_stats["service_cache_hit"]
        assert_warm_equals_cold(first, cold)
        assert_warm_equals_cold(warm, cold)

    def test_warm_c_sweep_matches_with_c_rebuilds(self):
        problem = make_sum_problem(c=0.5)
        with ExplainService(algorithm="mc") as service:
            service.explain(problem)
            for c in (0.3, 0.1, 0.0, 0.5):
                warm = service.explain(problem, c=c)
                cold = Scorpion(algorithm="mc").explain(problem.with_c(c))
                assert warm.scorer_stats["service_cache_hit"]
                assert_warm_equals_cold(warm, cold)

    def test_lam_rebinds_against_cached_image(self):
        problem = make_sum_problem()
        with ExplainService(algorithm="mc") as service:
            service.explain(problem)
            warm = service.explain(problem, lam=0.8)
        rebound = problem.with_params(lam=0.8)
        cold = Scorpion(algorithm="mc").explain(rebound)
        assert_warm_equals_cold(warm, cold)

    def test_dt_with_cache_warm_start_at_least_as_good(self):
        problem = make_sum_problem(c=0.5)
        with ExplainService(algorithm="dt") as service:
            service.explain(problem)
            for c in (0.3, 0.1):
                warm = service.explain(problem, c=c)
                cold = Scorpion(algorithm="dt",
                                use_cache=False).explain(problem.with_c(c))
                assert warm.best is not None
                assert warm.best.influence >= cold.best.influence - 1e-9
            # Warm DT runs reuse the entry's partition cache.
            assert warm.scorer_stats["dtcache_partition_hits"] == 1
            assert warm.scorer_stats["dtcache_partition_misses"] == 0

    def test_request_entry_point_shares_the_entry(self):
        table, outliers, holdouts = planted_sum_table()
        query = GroupByQuery("g", Sum(), "value")
        problem = ScorpionQuery(table, query, outliers, holdouts, +1.0, c=0.5)
        cold = Scorpion(algorithm="mc").explain(problem)
        with ExplainService(algorithm="mc") as service:
            service.explain(problem)
            via_request = service.explain_request(
                table, query, outliers, holdouts, +1.0, c=0.5)
        assert via_request.scorer_stats["service_cache_hit"]
        assert_warm_equals_cold(via_request, cold)


class TestContentKey:
    def test_fingerprint_is_content_not_identity(self):
        a, _, _ = planted_sum_table()
        b, _, _ = planted_sum_table()
        assert a is not b
        assert table_fingerprint(a) == table_fingerprint(b)
        c, _, _ = planted_sum_table(seed=1)
        assert table_fingerprint(a) != table_fingerprint(c)

    def test_reconstructed_equal_table_hits(self):
        first = make_sum_problem()
        second = make_sum_problem()  # new Table object, same content
        assert first.raw_table is not second.raw_table
        with ExplainService(algorithm="mc") as service:
            service.explain(first)
            warm = service.explain(second)
        assert warm.scorer_stats["service_cache_hit"]

    def test_key_excludes_c_and_lam(self):
        problem = make_sum_problem(c=0.5)
        assert problem_key(problem) == problem_key(problem.with_c(0.1))
        assert problem_key(problem) == problem_key(
            problem.with_params(lam=0.9))

    def test_key_sees_labels_attributes_and_data(self):
        base = make_sum_problem()
        table, outliers, holdouts = planted_sum_table()
        query = GroupByQuery("g", Sum(), "value")
        swapped = ScorpionQuery(table, query, outliers, holdouts[:1], +1.0)
        assert problem_key(base) != problem_key(swapped)
        narrowed = ScorpionQuery(table, query, outliers, holdouts, +1.0,
                                 attributes=("a1",))
        assert problem_key(base) != problem_key(narrowed)
        other_data = make_sum_problem(seed=1)
        assert problem_key(base) != problem_key(other_data)

    def test_request_key_matches_problem_key(self):
        table, outliers, holdouts = planted_sum_table()
        query = GroupByQuery("g", Sum(), "value")
        problem = ScorpionQuery(table, query, outliers, holdouts, +1.0, c=0.5)
        assert request_key(table, query, outliers, holdouts, +1.0) == \
            problem_key(problem)
        # Normalization: label order and scalar-vs-mapping error vectors.
        assert request_key(table, query, list(reversed(outliers)),
                           list(reversed(holdouts)),
                           {k: 1.0 for k in outliers}) == problem_key(problem)
        narrowed = ScorpionQuery(table, query, outliers, holdouts, +1.0,
                                 attributes=("a1",))
        assert request_key(table, query, outliers, holdouts, +1.0,
                           attributes=("a1",)) == problem_key(narrowed)


class TestEvictionAndMemory:
    def test_entries_report_resident_bytes(self):
        with ExplainService(algorithm="mc") as service:
            result = service.explain(make_sum_problem())
        assert result.scorer_stats["service_cached_bytes"] > 0
        assert result.scorer_stats["service_entries"] == 1

    def test_zero_capacity_keeps_nothing_resident(self):
        problem = make_sum_problem()
        with ExplainService(cache_bytes=0, algorithm="mc") as service:
            service.explain(problem)
            again = service.explain(problem)
            stats = service.stats()
        assert not again.scorer_stats["service_cache_hit"]
        assert stats["service_misses"] == 2
        assert stats["service_evictions"] == 2
        assert stats["service_entries"] == 0
        assert stats["service_cached_bytes"] == 0

    def test_lru_eviction_under_pressure(self):
        small = make_sum_problem(n_per_group=80)
        other = make_sum_problem(n_per_group=50)
        # Measure each entry's resident footprint, then size the
        # capacity so either fits alone but not both together.
        with ExplainService(algorithm="mc") as probe:
            small_bytes = probe.explain(small).scorer_stats[
                "service_cached_bytes"]
        with ExplainService(algorithm="mc") as probe:
            other_bytes = probe.explain(other).scorer_stats[
                "service_cached_bytes"]
        with ExplainService(cache_bytes=small_bytes + other_bytes - 1,
                            algorithm="mc") as service:
            service.explain(small)
            service.explain(other)  # evicts `small` (LRU, over capacity)
            stats = service.stats()
            assert stats["service_evictions"] == 1
            assert stats["service_entries"] == 1
            revisit = service.explain(small)
        assert not revisit.scorer_stats["service_cache_hit"]

    def test_eviction_preserves_results(self):
        problem = make_sum_problem()
        cold = Scorpion(algorithm="mc").explain(problem)
        with ExplainService(cache_bytes=0, algorithm="mc") as service:
            for _ in range(3):
                assert_warm_equals_cold(service.explain(problem), cold)

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv("SCORPION_CACHE_BYTES", "12345")
        assert ExplainService().cache_bytes == 12345
        monkeypatch.delenv("SCORPION_CACHE_BYTES")
        from repro.service import DEFAULT_CACHE_BYTES
        assert ExplainService().cache_bytes == DEFAULT_CACHE_BYTES
        with pytest.raises(ScorpionError):
            ExplainService(cache_bytes=-1)


class TestConcurrency:
    def test_concurrent_same_key_requests_build_once(self):
        problem = make_sum_problem()
        cold = Scorpion(algorithm="mc").explain(problem)
        with ExplainService(algorithm="mc") as service:
            async def fanout():
                return await asyncio.gather(*[
                    service.explain_async(problem) for _ in range(4)])
            results = asyncio.run(fanout())
            stats = service.stats()
        assert stats["service_misses"] == 1
        assert stats["service_hits"] == 3
        for result in results:
            assert explanation_image(result) == explanation_image(cold)

    def test_deadline_expiry_raises(self):
        problem = make_sum_problem()
        with ExplainService(algorithm="mc") as service:
            def slow_explain(*args, **kwargs):
                time.sleep(0.5)
                raise AssertionError("deadline should fire first")
            service.explain = slow_explain
            with pytest.raises(asyncio.TimeoutError):
                asyncio.run(service.explain_async(problem, deadline=0.05))

    def test_default_deadline_resolves_from_task_timeout_env(
            self, monkeypatch):
        problem = make_sum_problem()
        monkeypatch.setenv("SCORPION_TASK_TIMEOUT", "0.05")
        with ExplainService(algorithm="mc") as service:
            def slow_explain(*args, **kwargs):
                time.sleep(0.5)
                raise AssertionError("deadline should fire first")
            service.explain = slow_explain
            with pytest.raises(asyncio.TimeoutError):
                asyncio.run(service.explain_async(problem))

    def test_zero_deadline_means_no_timeout(self):
        problem = make_sum_problem()
        with ExplainService(algorithm="mc") as service:
            result = asyncio.run(service.explain_async(problem, deadline=0))
        assert result.explanations


class TestReleaseRaces:
    """The refcounted-release contract under adversarial interleavings:
    an entry is released exactly when its last pin drops, never under a
    running request — whether it died by ``close()``, by capacity
    eviction, or while its async caller's deadline had already expired
    and abandoned it."""

    @staticmethod
    def _block_first_run(service):
        """Patch ``service._run`` so only the *first* call blocks on the
        returned ``resume`` event (later calls run straight through),
        signalling ``entered`` once it is inside the scorer."""
        import threading
        entered, resume = threading.Event(), threading.Event()
        inner_run = service._run
        state = {"blocked": False}

        def blocking_run(entry, *args, **kwargs):
            if not state["blocked"]:
                state["blocked"] = True
                entered.set()
                assert resume.wait(30)
            return inner_run(entry, *args, **kwargs)

        service._run = blocking_run
        return entered, resume

    def test_deadline_expiry_abandons_request_then_eviction_defers(self):
        """An ``explain_async`` deadline fires while the entry is being
        evicted (service close): the caller is long gone, but the
        abandoned worker thread still holds a pin, so the dead entry's
        scorer must survive until that thread's unpin — which then
        releases it."""
        import threading
        problem = make_sum_problem()
        service = ExplainService(algorithm="mc")
        entered, resume = self._block_first_run(service)

        async def drive():
            with pytest.raises(asyncio.TimeoutError):
                await service.explain_async(problem, deadline=0.05)
            # Caller abandoned; the worker thread is still pinned inside
            # _run.  Evict the entry out from under it.
            assert entered.is_set()
            entry = next(iter(service._entries.values()))
            service.close()
            assert entry.dead and entry.pins == 1
            assert entry.scorer is not None  # NOT released mid-run
            resume.set()

        # asyncio.run joins the abandoned to_thread worker when it
        # shuts the default executor down, so returning at all proves
        # the abandoned request finished rather than wedging.
        asyncio.run(drive())
        assert len(service) == 0
        assert service.stats()["service_cached_bytes"] == 0

    def test_concurrent_same_key_requests_release_once_after_close(self):
        """Two pins on one entry, service closed mid-flight: the first
        unpin must leave the scorer alive for the second request (which
        must still answer bit-for-bit), and only the second unpin
        releases."""
        import threading
        problem = make_sum_problem()
        cold = Scorpion(algorithm="mc").explain(problem)
        service = ExplainService(algorithm="mc")
        entered, resume = self._block_first_run(service)
        boxes: list[dict] = [{}, {}]
        threads = [
            threading.Thread(
                target=lambda box=box: box.setdefault(
                    "r", service.explain(problem)))
            for box in boxes
        ]
        threads[0].start()
        assert entered.wait(10)
        entry = next(iter(service._entries.values()))
        threads[1].start()
        # Second request: pinned, queued on the entry lock behind the
        # blocked first request.
        deadline = time.monotonic() + 10
        while entry.pins < 2:
            assert time.monotonic() < deadline, "second pin never arrived"
            time.sleep(0.01)
        service.close()
        assert entry.dead
        resume.set()
        for thread in threads:
            thread.join(30)
            assert not thread.is_alive()
        for box in boxes:
            assert_warm_equals_cold(box["r"], cold)
        assert entry.pins == 0
        assert len(service) == 0

    def test_capacity_eviction_skips_pinned_running_entry(self):
        """A zero-capacity eviction pass triggered by another request's
        unpin must skip the pinned in-flight entry; the entry is evicted
        by its own unpin afterwards."""
        import threading
        problem = make_sum_problem()
        other = make_sum_problem(n_per_group=50)
        service = ExplainService(algorithm="mc", cache_bytes=0)
        entered, resume = self._block_first_run(service)
        box: dict = {}
        worker = threading.Thread(
            target=lambda: box.setdefault("r", service.explain(problem)))
        worker.start()
        assert entered.wait(10)
        entry = next(iter(service._entries.values()))
        # This request's unpin runs a full over-capacity eviction pass
        # while `entry` is pinned and mid-run.
        assert service.explain(other).explanations
        assert not entry.dead, "pinned entry evicted under a running request"
        assert entry.scorer is not None
        resume.set()
        worker.join(30)
        assert not worker.is_alive()
        assert box["r"].explanations
        # Its own unpin then enforced the zero-byte capacity.
        assert len(service) == 0
        assert service.stats()["service_cached_bytes"] == 0
        service.close()


class TestLifecycle:
    def test_close_with_inflight_request_defers_release(self):
        import threading
        problem = make_sum_problem()
        service = ExplainService(algorithm="mc")
        entered, resume = threading.Event(), threading.Event()
        inner_run = service._run

        def blocking_run(entry, *args, **kwargs):
            entered.set()
            assert resume.wait(10)
            return inner_run(entry, *args, **kwargs)

        service._run = blocking_run
        box = {}
        worker = threading.Thread(
            target=lambda: box.setdefault("r", service.explain(problem)))
        worker.start()
        assert entered.wait(10)
        # The entry is pinned by the in-flight request: close() marks it
        # dead but must not tear down the scorer under the request.
        service.close()
        resume.set()
        worker.join(30)
        assert not worker.is_alive()
        assert box["r"].explanations
        # The last unpin released the dead entry.
        assert len(service) == 0
        assert service.stats()["service_cached_bytes"] == 0

    def test_close_rejects_further_requests(self):
        problem = make_sum_problem()
        service = ExplainService(algorithm="mc")
        service.explain(problem)
        service.close()
        with pytest.raises(ScorpionError, match="closed"):
            service.explain(problem)
        assert len(service) == 0

    def test_sweep_c_use_service_matches_plain_sweep(self):
        table, outliers, holdouts = planted_sum_table()
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                                outliers, holdouts, +1.0, c=0.5)
        c_values = (0.5, 0.2, 0.0)
        plain = sweep_c("mc", problem, c_values)
        resident = sweep_c("mc", problem, c_values, use_service=True)
        for a, b in zip(plain, resident):
            assert a.c == b.c
            assert a.predicate == b.predicate
            assert a.influence == b.influence
        # Every run after the first hit the resident cache.
        assert [r.scorer_stats["service_cache_hit"] for r in resident] == \
            [False, True, True]
