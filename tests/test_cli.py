"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, run
from repro.table import write_csv

from tests.conftest import SENSOR_ROWS, SENSOR_SCHEMA
from repro.table.table import Table


@pytest.fixture
def sensors_csv(tmp_path):
    path = tmp_path / "sensors.csv"
    write_csv(Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS), path)
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = run(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_required_arguments(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args([
            "--csv", "x.csv", "--query", "q", "--outliers", "a"])
        assert args.direction == "high"
        assert args.c == 0.5
        assert args.top_k == 3


class TestRun:
    def test_end_to_end(self, sensors_csv):
        code, output = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM,1PM",
            "--holdouts", "11AM",
            "--c", "0.5",
            "--algorithm", "naive",
        ])
        assert code == 0
        assert "algorithm: naive" in output
        assert "voltage" in output or "sensorid" in output
        assert "->" in output  # updated outputs section

    def test_explore_c(self, sensors_csv):
        code, output = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM,1PM",
            "--holdouts", "11AM",
            "--algorithm", "naive",
            "--explore-c",
        ])
        assert code == 0
        assert "c-ladder" in output

    def test_ignore_attributes(self, sensors_csv):
        code, output = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM",
            "--ignore", "humidity,voltage",
            "--algorithm", "naive",
        ])
        assert code == 0
        assert "humidity" not in output
        assert "voltage" not in output

    def test_missing_outlier_key_is_reported(self, sensors_csv, capsys):
        code, _ = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "3AM",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_csv_is_reported(self, capsys):
        code, _ = _run([
            "--csv", "/nonexistent/file.csv",
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_sql_is_reported(self, sensors_csv, capsys):
        code, _ = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg temp FROM sensors GROUP BY time",
            "--outliers", "12PM",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_outliers_rejected(self, sensors_csv, capsys):
        code, _ = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", " , ",
        ])
        assert code == 2

    def test_numeric_group_keys_coerced(self, tmp_path):
        import numpy as np
        from repro.table import ColumnKind, ColumnSpec, Schema
        rng = np.random.default_rng(0)
        rows = []
        for g in (1, 2, 3, 4):
            for _ in range(30):
                value = 100.0 if (g <= 2 and rng.uniform() < 0.3) else 10.0
                rows.append((str(g), rng.uniform(0, 100), value))
        schema = Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                         ColumnSpec("x", ColumnKind.CONTINUOUS),
                         ColumnSpec("v", ColumnKind.CONTINUOUS)])
        path = tmp_path / "t.csv"
        write_csv(Table.from_rows(schema, rows), path)
        code, output = _run([
            "--csv", str(path),
            "--query", "SELECT avg(v) FROM t GROUP BY g",
            "--outliers", "1,2",
            "--holdouts", "3,4",
            "--algorithm", "dt",
        ])
        assert code == 0
        assert "algorithm: dt" in output


class TestServe:
    """JSON-lines resident-service mode (--serve)."""

    @pytest.fixture
    def planted_csv(self, tmp_path):
        import numpy as np
        from repro.table import ColumnKind, ColumnSpec, Schema
        rng = np.random.default_rng(0)
        rows = []
        for g in ("a", "b", "c", "d"):
            for _ in range(60):
                value = 100.0 if (g in ("a", "b") and rng.uniform() < 0.3) else 10.0
                rows.append((g, rng.uniform(0, 100), value))
        schema = Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                         ColumnSpec("x", ColumnKind.CONTINUOUS),
                         ColumnSpec("v", ColumnKind.CONTINUOUS)])
        path = tmp_path / "planted.csv"
        write_csv(Table.from_rows(schema, rows), path)
        return str(path)

    def _serve(self, csv_path, requests, extra_args=(), log=None):
        import json
        out = io.StringIO()
        stdin = io.StringIO(
            "\n".join(json.dumps(r) if isinstance(r, dict) else r
                      for r in requests) + "\n")
        code = run([
            "--csv", csv_path,
            "--query", "SELECT avg(v) FROM t GROUP BY g",
            "--algorithm", "dt",
            "--serve", *extra_args,
        ], out=out, stdin=stdin, log=log)
        return code, [json.loads(line)
                      for line in out.getvalue().splitlines()]

    def test_requests_answered_and_cached(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a", "b"], "holdouts": ["c", "d"], "c": 0.5},
            {"outliers": ["a", "b"], "holdouts": ["c", "d"], "c": 0.1},
        ])
        assert code == 0
        assert [r["ok"] for r in responses] == [True, True]
        # Same content key (c excluded): the second request is warm.
        assert [r["cache_hit"] for r in responses] == [False, True]
        assert responses[0]["explanations"]
        assert responses[1]["stats"]["service_entries"] == 1

    def test_bad_request_yields_error_line_and_loop_survives(
            self, planted_csv):
        code, responses = self._serve(planted_csv, [
            "not json",
            {"c": 0.5},  # missing outliers
            {"outliers": ["a"], "holdouts": ["c"]},
        ])
        assert code == 0
        assert [r["ok"] for r in responses] == [False, False, True]
        assert all("error" in r for r in responses[:2])

    def test_cache_bytes_flag(self, planted_csv):
        # The stats op between the explains is a drain barrier: without
        # it the two same-key requests may coalesce in flight (one
        # build, shared entry) — here we want to observe residency
        # *between* completed requests.
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
            {"op": "stats"},
            {"outliers": ["a"], "holdouts": ["c"]},
        ], extra_args=("--cache-bytes", "0"))
        assert code == 0
        # Zero capacity: nothing stays resident between requests.
        assert [r["cache_hit"] for r in (responses[0], responses[2])] \
            == [False, False]
        # Each response snapshots the counters while its own entry is
        # still pinned, so it sees only the *previous* request's
        # eviction.
        assert responses[2]["stats"]["service_evictions"] == 1

    def test_stats_op_reconciles_with_requests(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
            {"outliers": ["a"], "holdouts": ["c"]},
            {"op": "stats"},
        ])
        assert code == 0
        stats_resp = responses[2]
        assert stats_resp["ok"] is True
        assert stats_resp["op"] == "stats"
        stats = stats_resp["stats"]
        # The per-service counters see exactly this serve loop's two
        # explains; the registry-backed keys are process-wide (every
        # service in the process shares the global registry), so they
        # reconcile as >= and histogram-count == requests.
        assert stats["service_hits"] + stats["service_misses"] == 2
        assert stats["service_requests"] >= 2
        assert stats["service_request_seconds"]["count"] == \
            stats["service_requests"]
        assert all("trace_id" in r for r in responses)
        assert len({r["trace_id"] for r in responses}) == 3

    def test_metrics_op_returns_prometheus_text(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
            {"op": "metrics"},
        ])
        assert code == 0
        metrics = responses[1]
        assert metrics["ok"] is True
        text = metrics["metrics"]
        assert "# TYPE scorpion_requests_total counter" in text
        assert "# TYPE scorpion_request_seconds histogram" in text
        assert 'scorpion_request_seconds_bucket{le="+Inf"}' in text

    def test_malformed_and_unknown_op_codes(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            "{not json",
            {"op": "frobnicate"},
            {"outliers": ["a"], "holdouts": ["c"]},
        ])
        assert code == 0
        assert [r["ok"] for r in responses] == [False, False, True]
        assert responses[0]["code"] == "bad_json"
        assert responses[1]["code"] == "unknown_op"
        assert all("trace_id" in r for r in responses)

    def test_structured_log_lines_join_on_trace_id(self, planted_csv):
        import json
        log = io.StringIO()
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
            "not json",
        ], log=log)
        assert code == 0
        records = [json.loads(line) for line in log.getvalue().splitlines()]
        events = [r["event"] for r in records]
        assert events == ["request_start", "request_finish",
                          "request_start", "request_error",
                          "serve_shutdown"]
        start, finish, _error_start, error, shutdown = records
        assert shutdown["reason"] == "eof"
        # Log lines and response lines join on the shared trace_id.
        assert start["trace_id"] == finish["trace_id"] \
            == responses[0]["trace_id"]
        assert error["trace_id"] == responses[1]["trace_id"]
        assert start["op"] == "explain"
        assert finish["elapsed_ms"] > 0
        assert finish["cache_hit"] is False
        assert error["code"] == "bad_json"
        assert all("ts" in r for r in records)

    def test_serve_trace_flag_attaches_spans(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
        ], extra_args=("--trace",))
        assert code == 0
        trace = responses[0]["trace"]
        assert trace
        names = {sp["name"] for sp in trace}
        assert "checkout" in names
        assert "explain" in names

    def test_health_op(self, planted_csv):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
            {"op": "health"},
        ])
        assert code == 0
        assert responses[1]["ok"] is True
        assert responses[1]["op"] == "health"
        health = responses[1]["health"]
        assert health["ok"] is True
        assert health["cache_entries"] == 1
        assert health["degraded"] is False
        assert health["pools"] \
            and health["pools"][0]["state"] in ("serial", "parallel")
        for key in ("pool_starts", "pool_failures", "pool_restarts",
                    "pool_retries", "degraded_batches", "oom_retries",
                    "pinned_entries", "cache_capacity_bytes"):
            assert key in health, key

    def test_overloaded_code_under_backpressure(self, planted_csv):
        from repro.faults import fault_injection

        # Hang the first request's build so the second arrives while
        # the single in-flight slot is occupied.
        with fault_injection("service.build:hang=0.7@1"):
            code, responses = self._serve(planted_csv, [
                {"outliers": ["a"], "holdouts": ["c"]},
                {"outliers": ["b"], "holdouts": ["d"]},
            ], extra_args=("--inflight-limit", "1"))
        assert code == 0
        codes = [r.get("code") for r in responses]
        assert "overloaded" in codes
        overloaded = responses[codes.index("overloaded")]
        assert overloaded["ok"] is False
        assert "in-flight limit 1" in overloaded["error"]
        # The accepted request still drained to a real answer.
        ok = [r for r in responses if r["ok"]]
        assert len(ok) == 1 and ok[0]["explanations"]

    def test_oom_retry_code_and_loop_survival(self, planted_csv):
        from repro.faults import fault_injection

        # Both build attempts (initial + post-shed retry) hit
        # MemoryError: structured oom_retry, not a crash; the next
        # request (fault expired) succeeds on the same loop.
        with fault_injection("service.build:memerror@1..2"):
            code, responses = self._serve(planted_csv, [
                {"outliers": ["a"], "holdouts": ["c"]},
                {"outliers": ["a"], "holdouts": ["c"]},
            ])
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "oom_retry"
        assert "out of memory" in responses[0]["error"]
        assert responses[1]["ok"] is True

    def test_internal_error_code_and_loop_survival(self, planted_csv):
        from repro.faults import fault_injection

        with fault_injection("service.checkout:oserror@1"):
            code, responses = self._serve(planted_csv, [
                {"outliers": ["a"], "holdouts": ["c"]},
                {"outliers": ["a"], "holdouts": ["c"]},
            ])
        assert code == 0
        assert responses[0]["ok"] is False
        assert responses[0]["code"] == "internal"
        assert "OSError" in responses[0]["error"]
        assert responses[1]["ok"] is True

    def test_read_fault_is_graceful_shutdown(self, planted_csv):
        import json
        from repro.faults import fault_injection

        log = io.StringIO()
        with fault_injection("serve.read:oserror@2"):
            code, responses = self._serve(planted_csv, [
                {"outliers": ["a"], "holdouts": ["c"]},
                {"outliers": ["a"], "holdouts": ["c"]},  # never read
            ], log=log)
        assert code == 0
        # The accepted request drained before shutdown.
        assert len(responses) == 1 and responses[0]["ok"] is True
        records = [json.loads(line) for line in log.getvalue().splitlines()]
        assert [r["event"] for r in records if r["event"] != "request_start"
                and r["event"] != "request_finish"] == \
            ["read_error", "serve_shutdown"]
        assert records[-1]["reason"] == "read_error"

    def test_sigint_drains_inflight_and_shuts_down(self, planted_csv):
        import json
        import signal
        import threading
        from repro.faults import fault_injection

        log = io.StringIO()
        timer = threading.Timer(
            0.3, lambda: signal.raise_signal(signal.SIGINT))
        timer.start()
        try:
            # The second read hangs (a blocked readline, as deployed);
            # SIGINT must break it, drain request 1, and exit 0.
            with fault_injection("serve.read:hang=30@2"):
                code, responses = self._serve(planted_csv, [
                    {"outliers": ["a"], "holdouts": ["c"]},
                ], log=log)
        finally:
            timer.cancel()
        assert code == 0
        assert responses and responses[0]["ok"] is True
        records = [json.loads(line) for line in log.getvalue().splitlines()]
        assert records[-1]["event"] == "serve_shutdown"
        assert records[-1]["reason"] == "SIGINT"

    def test_inflight_limit_validation(self, planted_csv, capsys):
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
        ], extra_args=("--inflight-limit", "0"))
        assert code == 2
        assert not responses
        assert "inflight" in capsys.readouterr().err.lower()

    def test_inflight_limit_env(self, planted_csv, monkeypatch):
        from repro.cli import _resolve_inflight
        monkeypatch.setenv("SCORPION_INFLIGHT_LIMIT", "3")
        assert _resolve_inflight(None) == 3
        assert _resolve_inflight(5) == 5
        monkeypatch.delenv("SCORPION_INFLIGHT_LIMIT")
        assert _resolve_inflight(None) == 8

    def test_metrics_file_dump(self, planted_csv, tmp_path):
        path = tmp_path / "metrics.prom"
        code, responses = self._serve(planted_csv, [
            {"outliers": ["a"], "holdouts": ["c"]},
        ], extra_args=("--metrics-file", str(path)))
        assert code == 0
        text = path.read_text()
        assert "# TYPE scorpion_requests_total counter" in text
        assert "scorpion_request_seconds_count" in text


class TestProfile:
    def test_profile_prints_span_tree(self, sensors_csv):
        code, output = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM,1PM",
            "--holdouts", "11AM",
            "--algorithm", "naive",
            "--profile",
        ])
        assert code == 0
        assert "algorithm: naive" in output
        # The profile tree: an explain root with indented child phases.
        assert "\nexplain" in output or output.startswith("explain")
        assert "  build" in output
        assert " ms" in output

    def test_one_shot_metrics_file(self, sensors_csv, tmp_path):
        path = tmp_path / "metrics.prom"
        code, _ = _run([
            "--csv", sensors_csv,
            "--query", "SELECT avg(temp) FROM sensors GROUP BY time",
            "--outliers", "12PM,1PM",
            "--holdouts", "11AM",
            "--algorithm", "naive",
            "--metrics-file", str(path),
        ])
        assert code == 0
        assert "# TYPE" in path.read_text()
