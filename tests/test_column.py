"""Unit tests for repro.table.column."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table.column import Column
from repro.table.schema import ColumnKind, ColumnSpec

CONT = ColumnSpec("x", ColumnKind.CONTINUOUS)
DISC = ColumnSpec("s", ColumnKind.DISCRETE)


class TestConstruction:
    def test_continuous_coerces_to_float(self):
        col = Column(CONT, [1, 2, 3])
        assert col.values.dtype == np.float64

    def test_discrete_preserves_objects(self):
        col = Column(DISC, ["a", 5, ("t",)])
        assert list(col) == ["a", 5, ("t",)]

    def test_backing_array_read_only(self):
        col = Column(CONT, [1.0, 2.0])
        with pytest.raises(ValueError):
            col.values[0] = 9.0

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError):
            Column(CONT, np.zeros((2, 2)))

    def test_non_numeric_continuous_rejected(self):
        with pytest.raises(ValueError):
            Column(CONT, ["a", "b"])

    def test_len_getitem(self):
        col = Column(CONT, [1.5, 2.5])
        assert len(col) == 2
        assert col[1] == 2.5

    def test_equality(self):
        assert Column(CONT, [1.0, 2.0]) == Column(CONT, [1.0, 2.0])
        assert Column(CONT, [1.0, 2.0]) != Column(CONT, [1.0, 3.0])
        assert Column(CONT, [1.0]) != Column(DISC, ["1.0"])

    def test_equality_with_nan(self):
        assert Column(CONT, [float("nan")]) == Column(CONT, [float("nan")])


class TestDerivations:
    def test_take(self):
        col = Column(CONT, [10.0, 20.0, 30.0])
        assert list(col.take([2, 0])) == [30.0, 10.0]

    def test_filter(self):
        col = Column(CONT, [10.0, 20.0, 30.0])
        assert list(col.filter(np.asarray([True, False, True]))) == [10.0, 30.0]

    def test_filter_wrong_length_rejected(self):
        col = Column(CONT, [1.0, 2.0])
        with pytest.raises(SchemaError):
            col.filter(np.asarray([True]))


class TestMasks:
    def test_range_mask_inclusive(self):
        col = Column(CONT, [1.0, 2.0, 3.0, 4.0])
        assert col.range_mask(2.0, 3.0).tolist() == [False, True, True, False]

    def test_range_mask_half_open(self):
        col = Column(CONT, [1.0, 2.0, 3.0])
        assert col.range_mask(1.0, 3.0, include_hi=False).tolist() == [True, True, False]

    def test_range_mask_on_discrete_rejected(self):
        with pytest.raises(SchemaError):
            Column(DISC, ["a"]).range_mask(0, 1)

    def test_membership_mask(self):
        col = Column(DISC, ["a", "b", "a", "c"])
        assert col.membership_mask(["a", "c"]).tolist() == [True, False, True, True]

    def test_membership_mask_unknown_values(self):
        col = Column(DISC, ["a", "b"])
        assert col.membership_mask(["zz"]).tolist() == [False, False]

    def test_membership_mask_empty_allowed(self):
        col = Column(DISC, ["a", "b"])
        assert col.membership_mask([]).tolist() == [False, False]

    def test_membership_mask_on_continuous_rejected(self):
        with pytest.raises(SchemaError):
            Column(CONT, [1.0]).membership_mask([1.0])

    def test_membership_repeated_calls_consistent(self):
        col = Column(DISC, list("abcabc"))
        first = col.membership_mask(["a"])
        second = col.membership_mask(["a"])
        assert first.tolist() == second.tolist()

    def test_membership_mixed_types(self):
        col = Column(DISC, [1, "1", 2])
        assert col.membership_mask([1]).tolist() == [True, False, False]


class TestStatistics:
    def test_distinct_continuous_sorted(self):
        col = Column(CONT, [3.0, 1.0, 3.0, 2.0])
        assert col.distinct() == [1.0, 2.0, 3.0]

    def test_distinct_discrete(self):
        col = Column(DISC, ["b", "a", "b"])
        assert col.distinct() == ["a", "b"]

    def test_distinct_unorderable_falls_back_to_repr(self):
        col = Column(DISC, [1, "a", 1])
        assert len(col.distinct()) == 2

    def test_min_max(self):
        col = Column(CONT, [5.0, -1.0, 3.0])
        assert col.min() == -1.0
        assert col.max() == 5.0

    def test_min_on_empty_rejected(self):
        with pytest.raises(SchemaError):
            Column(CONT, []).min()

    def test_min_on_discrete_rejected(self):
        with pytest.raises(SchemaError):
            Column(DISC, ["a"]).min()

    def test_cardinality(self):
        assert Column(DISC, ["a", "b", "a"]).cardinality() == 2
