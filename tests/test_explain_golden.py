"""Seeded end-to-end golden test at the API surface.

``Scorpion.explain`` funnels every candidate predicate through the
influence scorer, so planner-routing drift anywhere in the stack —
range tier, discrete-bucket tier, conjunction tier, mask kernel,
parallel shards — would surface here as a different explanation.  On a
fixed synthetic dataset, the default run, the ``use_index=False`` run
(CLI ``--no-index``), and the ``workers=2`` run (CLI ``--workers 2``)
must return identical top predicates and influences.
"""

import numpy as np
import pytest

from repro.aggregates import Sum
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.index import cost, force_index_model
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table


def golden_problem(seed: int = 11) -> ScorpionQuery:
    """A planted SUM workload with one continuous and one discrete
    explanation attribute, so the search emits single ranges, single
    set clauses, and 2-clause conjunctions — every index tier."""
    rng = np.random.default_rng(seed)
    n_per_group, groups = 120, ["g0", "g1", "g2", "g3"]
    n = n_per_group * len(groups)
    g = np.repeat(groups, n_per_group)
    a1 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(g, ["g0", "g1"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 40.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "g": g, "a1": a1, "state": state, "value": value,
    })
    return ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                         outliers=["g0", "g1"], holdouts=["g2", "g3"],
                         error_vectors=+1.0, c=0.5)


def explanation_signature(result):
    return [(e.predicate, e.influence) for e in result.explanations]


@pytest.mark.parametrize("algorithm", ["dt", "mc"])
def test_explain_identical_across_scoring_paths(algorithm):
    problem = golden_problem()
    default = Scorpion(algorithm=algorithm, use_cache=False,
                       batch_chunk=32).explain(problem)
    no_index = Scorpion(algorithm=algorithm, use_cache=False,
                        batch_chunk=32, use_index=False).explain(problem)
    parallel = Scorpion(algorithm=algorithm, use_cache=False,
                        batch_chunk=32, workers=2).explain(problem)

    assert explanation_signature(default) == explanation_signature(no_index)
    assert explanation_signature(default) == explanation_signature(parallel)

    # The default run's routing was actually priced by the cost model;
    # the --no-index run never made a decision; the parallel run routed
    # identically, cost decisions included.
    cost_counters = tuple(f"cost_routed_{k}"
                          for k in ("mask", "prefix", "bucket", "gather",
                                    "conj"))
    assert sum(default.scorer_stats[c] for c in cost_counters) > 0
    assert no_index.scorer_stats["indexed_predicates"] == 0
    assert sum(no_index.scorer_stats[c] for c in cost_counters) == 0
    for name in (("indexed_predicates", "indexed_ranges", "indexed_sets",
                  "indexed_conjunctions", "masked_predicates")
                 + cost_counters):
        assert parallel.scorer_stats[name] == default.scorer_stats[name], name


def test_default_run_exercises_new_tiers():
    """The planted workload's best explanation is a conjunction (hot
    region = a1 range × state set), so with the mask kernel priced out
    the search must hit the conjunction tier; DT's discrete splits also
    emit set clauses.  (At this problem size the *real* cost model may
    rightly keep conjunctions on the mask kernel — the pinned model
    keeps this a tier-engagement test, not an economics test.)"""
    cost.set_shared(force_index_model())
    try:
        result = Scorpion(algorithm="dt", use_cache=False,
                          batch_chunk=32).explain(golden_problem())
    finally:
        cost.set_shared(None)
    assert result.scorer_stats["indexed_conjunctions"] > 0
    assert result.scorer_stats["cost_routed_conj"] > 0
    best = result.best.predicate
    assert best is not None
    assert "state" in best.attributes or "a1" in best.attributes
