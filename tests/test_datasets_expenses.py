"""Unit tests for the campaign-expenses generator."""

import numpy as np
import pytest

from repro.datasets.expenses import (
    GROUND_TRUTH_AMOUNT,
    ExpensesConfig,
    generate_expenses,
)
from repro.errors import DatasetError


def tiny():
    return generate_expenses(ExpensesConfig(
        n_days=40, rows_per_day=30, n_recipients=50, n_cities=10,
        n_zips=10, n_outlier_days=3, seed=1))


class TestStructure:
    def test_schema_shape(self):
        # 12 explanation attributes (paper Section 8.1) + date, candidate,
        # and the aggregated amount.
        ds = tiny()
        assert ds.table.num_columns == 15
        assert ds.table.schema["disb_amt"].is_continuous
        discrete = [s for s in ds.table.schema if s.is_discrete]
        assert len(discrete) == 14

    def test_outlier_and_holdout_days(self):
        ds = tiny()
        assert len(ds.outlier_keys) == 3
        assert len(ds.holdout_keys) == 27
        assert not set(ds.outlier_keys) & set(ds.holdout_keys)

    def test_reproducible(self):
        assert tiny().table == tiny().table

    def test_other_candidates_present(self):
        ds = tiny()
        candidates = set(ds.table.column("candidate").distinct())
        assert "Obama" in candidates and len(candidates) > 1


class TestOutlierDays:
    def test_outlier_day_totals_exceed_10m(self):
        ds = tiny()
        results = ds.query().execute(ds.table)
        for day in ds.outlier_keys:
            assert results.by_key(day).value > 1e7

    def test_typical_days_are_small(self):
        ds = tiny()
        results = ds.query().execute(ds.table)
        for day in ds.holdout_keys:
            assert results.by_key(day).value < 2e6

    def test_gmmb_media_buys_on_outlier_days(self):
        ds = tiny()
        gmmb = ds.table.column("recipient_nm").membership_mask(["GMMB INC."])
        days = set(ds.table.values("date")[gmmb])
        assert days == set(ds.outlier_keys)

    def test_ground_truth_is_over_threshold(self):
        ds = tiny()
        amounts = ds.table.values("disb_amt")
        np.testing.assert_array_equal(ds.truth_mask,
                                      amounts > GROUND_TRUTH_AMOUNT)

    def test_truth_tuples_are_file_800316(self):
        ds = tiny()
        file_nums = ds.table.values("file_num")[ds.truth_mask]
        assert set(file_nums) == {800316}

    def test_sibling_report_below_threshold(self):
        ds = tiny()
        sibling = ds.table.column("file_num").membership_mask([800317])
        amounts = ds.table.values("disb_amt")[sibling]
        assert len(amounts) and (amounts <= GROUND_TRUTH_AMOUNT).all()


class TestEffectiveViews:
    def test_effective_table_only_obama(self):
        ds = tiny()
        effective = ds.effective_table()
        assert set(effective.column("candidate").distinct()) == {"Obama"}

    def test_effective_truth_mask_aligned(self):
        ds = tiny()
        effective = ds.effective_table()
        mask = ds.effective_truth_mask()
        assert mask.shape == (len(effective),)
        amounts = effective.values("disb_amt")
        np.testing.assert_array_equal(mask, amounts > GROUND_TRUTH_AMOUNT)

    def test_outlier_row_indices_in_effective_frame(self):
        ds = tiny()
        rows = ds.outlier_row_indices()
        effective = ds.effective_table()
        days = set(effective.values("date")[rows])
        assert days == set(ds.outlier_keys)

    def test_scorpion_query_excludes_candidate_attribute(self):
        problem = tiny().scorpion_query()
        assert "candidate" not in problem.attributes
        assert "date" not in problem.attributes
        assert "disb_amt" not in problem.attributes
        assert len(problem.attributes) == 12

    def test_sum_check_passes_for_mc(self):
        problem = tiny().scorpion_query()
        from repro.core.influence import InfluenceScorer
        scorer = InfluenceScorer(problem)
        assert all(problem.aggregate.check(ctx.agg_values)
                   for ctx in scorer.contexts)


class TestConfigValidation:
    def test_needs_enough_days(self):
        with pytest.raises(DatasetError):
            ExpensesConfig(n_days=20)

    def test_needs_enough_rows(self):
        with pytest.raises(DatasetError):
            ExpensesConfig(rows_per_day=5)

    def test_needs_recipients(self):
        with pytest.raises(DatasetError):
            ExpensesConfig(n_recipients=3)
