"""Scalar-vs-batch equivalence tests for the batched scoring engine.

The contract (see the :mod:`repro.core.influence` module docstring):
``score_batch(preds)`` equals ``[score(p) for p in preds]`` *exactly*,
on both the incrementally-removable and black-box paths, including the
``-inf`` whole-group-deletion and empty-match edge cases, and the shared
memo cache keeps the two entry points coherent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import Avg, Median
from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table.table import Table

from tests.conftest import (
    SENSOR_ROWS,
    SENSOR_SCHEMA,
    assert_scoring_paths_agree,
    planted_sum_table,
)


def sensors_problem(aggregate=None, perturbation="delete",
                    c: float = 1.0) -> ScorpionQuery:
    table = Table.from_rows(SENSOR_SCHEMA, SENSOR_ROWS)
    query = GroupByQuery("time", aggregate or Avg(), "temp")
    return ScorpionQuery(table, query, outliers=["12PM", "1PM"],
                         holdouts=["11AM"], error_vectors=+1.0, c=c,
                         perturbation=perturbation)


@st.composite
def sensor_predicates(draw) -> Predicate:
    """Random conjunctions over the sensors table's ``A_rest``; the empty
    draw yields TRUE (whole-group deletion) and sensorid 99 never
    matches, so both edge cases appear naturally."""
    clauses = []
    if draw(st.booleans()):
        lo = draw(st.floats(2.0, 2.8))
        hi = lo + draw(st.floats(0.01, 0.5))
        clauses.append(RangeClause("voltage", lo, hi, draw(st.booleans())))
    if draw(st.booleans()):
        lo = draw(st.floats(0.0, 0.6))
        clauses.append(RangeClause("humidity", lo, lo + draw(st.floats(0.0, 0.4))))
    if draw(st.booleans()):
        values = draw(st.sets(st.sampled_from([1, 2, 3, 99]), min_size=1))
        clauses.append(SetClause("sensorid", sorted(values)))
    return Predicate(clauses)


def assert_batch_equals_scalar(scorer: InfluenceScorer,
                               predicates: list[Predicate],
                               ignore_holdouts: bool = False) -> np.ndarray:
    batched = scorer.score_batch(predicates, ignore_holdouts=ignore_holdouts)
    scalar = np.asarray([scorer.score(p, ignore_holdouts=ignore_holdouts)
                         for p in predicates])
    np.testing.assert_array_equal(batched, scalar)
    return batched


class TestEquivalenceProperty:
    """Random conjunctions through the shared differential oracle
    (scalar / mask kernel / index-routed scoring must agree exactly)."""

    @settings(max_examples=40, deadline=None)
    @given(predicates=st.lists(sensor_predicates(), max_size=12))
    def test_incremental_path(self, predicates):
        assert_scoring_paths_agree(sensors_problem(), predicates)

    @settings(max_examples=40, deadline=None)
    @given(predicates=st.lists(sensor_predicates(), max_size=8),
           c=st.sampled_from([0.0, 0.1, 0.5, 0.7, 1.0]))
    def test_fractional_c_exponents(self, predicates, c):
        # Vectorized ``**`` differs from scalar pow in the last ulp on
        # some inputs; the denominators must go through scalar pow.
        assert_scoring_paths_agree(sensors_problem(c=c), predicates)

    @settings(max_examples=20, deadline=None)
    @given(predicates=st.lists(sensor_predicates(), max_size=8))
    def test_black_box_path(self, predicates):
        scorer = InfluenceScorer(sensors_problem(Median()), cache_scores=False)
        assert not scorer.uses_incremental
        assert not scorer.uses_index
        assert_scoring_paths_agree(sensors_problem(Median()), predicates)

    @settings(max_examples=20, deadline=None)
    @given(predicates=st.lists(sensor_predicates(), max_size=8))
    def test_ignore_holdouts(self, predicates):
        assert_scoring_paths_agree(sensors_problem(), predicates,
                                   ignore_holdouts=True)

    @settings(max_examples=20, deadline=None)
    @given(predicates=st.lists(sensor_predicates(), max_size=8))
    def test_mean_perturbation(self, predicates):
        assert_scoring_paths_agree(sensors_problem(perturbation="mean"),
                                   predicates)


class TestEdgeCases:
    def test_whole_group_deletion_is_invalid(self):
        scorer = InfluenceScorer(sensors_problem(), cache_scores=False)
        batched = assert_batch_equals_scalar(scorer, [Predicate.true()])
        assert batched[0] == INVALID_INFLUENCE

    def test_empty_match_scores_zero(self):
        scorer = InfluenceScorer(sensors_problem(), cache_scores=False)
        nothing = Predicate([SetClause("sensorid", [99])])
        batched = assert_batch_equals_scalar(scorer, [nothing])
        assert batched[0] == 0.0

    def test_empty_batch(self):
        scorer = InfluenceScorer(sensors_problem())
        assert scorer.score_batch([]).shape == (0,)

    def test_duplicates_share_one_evaluation(self):
        scorer = InfluenceScorer(sensors_problem(), cache_scores=False)
        p = Predicate([SetClause("sensorid", [3])])
        batched = scorer.score_batch([p, p, p])
        assert batched[0] == batched[1] == batched[2] == scorer.score(p)
        # Three submissions, one discrete-bucket evaluation for the trio
        # + one mask evaluation for the scalar call.
        assert scorer.stats.indexed_sets == 1
        assert scorer.stats.mask_scores == 1

    def test_non_rest_attribute_falls_back(self):
        scorer = InfluenceScorer(sensors_problem(), cache_scores=False)
        # temp is the aggregate attribute — outside the labeled evaluator.
        outside = Predicate([RangeClause("temp", 79.0, 120.0)])
        inside = Predicate([SetClause("sensorid", [3])])
        assert_batch_equals_scalar(scorer, [outside, inside, outside])

    def test_sum_problem_with_fractional_c(self):
        problem_table, outliers, holdouts = planted_sum_table()
        from repro.aggregates import Sum
        problem = ScorpionQuery(problem_table, GroupByQuery("g", Sum(), "value"),
                                outliers=outliers, holdouts=holdouts,
                                error_vectors=+1.0, c=0.5)
        scorer = InfluenceScorer(problem, cache_scores=False)
        predicates = [
            Predicate([RangeClause("a1", 10.0 * i, 10.0 * i + 25.0)])
            for i in range(8)
        ] + [
            Predicate([SetClause("state", [s])]) for s in ("CA", "TX", "ZZ")
        ] + [Predicate.true()]
        assert_batch_equals_scalar(scorer, predicates)

    def test_internal_chunking_matches_unchunked(self):
        scorer = InfluenceScorer(sensors_problem(), cache_scores=False)
        predicates = [Predicate([RangeClause("voltage", 2.0, 2.3 + 0.001 * i)])
                      for i in range(37)]
        small = InfluenceScorer(sensors_problem(), cache_scores=False,
                                batch_chunk=8)  # force multiple passes
        assert small.batch_chunk == 8
        np.testing.assert_array_equal(small.score_batch(predicates),
                                      scorer.score_batch(predicates))


class TestCacheCoherence:
    def test_batch_populates_scalar_cache(self):
        scorer = InfluenceScorer(sensors_problem())
        p = Predicate([SetClause("sensorid", [3])])
        batched = scorer.score_batch([p])
        before = scorer.stats.cache_hits
        assert scorer.score(p) == batched[0]
        assert scorer.stats.cache_hits == before + 1

    def test_scalar_populates_batch_cache(self):
        scorer = InfluenceScorer(sensors_problem())
        p = Predicate([SetClause("sensorid", [3])])
        value = scorer.score(p)
        before = scorer.stats.cache_hits
        assert scorer.score_batch([p])[0] == value
        assert scorer.stats.cache_hits == before + 1

    def test_outlier_only_cache_is_separate(self):
        scorer = InfluenceScorer(sensors_problem())
        p = Predicate([SetClause("sensorid", [3])])
        with_holdouts = scorer.score_batch([p])[0]
        outlier_only = scorer.score_batch([p], ignore_holdouts=True)[0]
        assert outlier_only != with_holdouts
        assert scorer.score(p) == with_holdouts
        assert scorer.outlier_only_score(p) == outlier_only


class TestStats:
    def test_batch_counters(self):
        scorer = InfluenceScorer(sensors_problem())
        predicates = [Predicate([SetClause("sensorid", [i])]) for i in (1, 2, 3)]
        scorer.score_batch(predicates)
        scorer.score_batch(predicates[:2])
        stats = scorer.stats
        assert stats.batch_calls == 2
        assert stats.batch_predicates == 5
        assert stats.largest_batch == 3
        assert stats.batch_seconds > 0.0
        assert stats.batch_throughput > 0.0
        assert stats.as_dict()["batch_throughput"] == stats.batch_throughput

    def test_reset_clears_batch_counters(self):
        scorer = InfluenceScorer(sensors_problem())
        scorer.score_batch([Predicate([SetClause("sensorid", [1])])])
        scorer.stats.reset()
        assert scorer.stats.batch_calls == 0
        assert scorer.stats.batch_predicates == 0
        assert scorer.stats.largest_batch == 0
        assert scorer.stats.batch_seconds == 0.0
        assert scorer.stats.batch_throughput == 0.0
