"""Unit tests for the influence Scorer — including the paper's own
worked example from Section 3.2."""

import numpy as np
import pytest

from repro.aggregates import Avg, Median, Sum
from repro.core.influence import INVALID_INFLUENCE, InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery


def scorer_for(paper_problem) -> InfluenceScorer:
    return InfluenceScorer(paper_problem)


class TestPaperExample:
    """Section 3.2: for α2 = avg(35, 35, 100), removing T4 has influence
    −10.8(3) and removing T6 has influence +21.6(7)."""

    def test_single_tuple_deltas(self, paper_problem):
        scorer = scorer_for(paper_problem)
        ctx_12pm = next(c for c in scorer.outlier_contexts if c.key == ("12PM",))
        deltas = scorer.tuple_deltas(ctx_12pm)
        # Δ(T4) = 56.67 − 67.5 = −10.83; Δ(T6) = 56.67 − 35 = 21.67.
        assert deltas[0] == pytest.approx(-10.833, abs=1e-3)
        assert deltas[2] == pytest.approx(21.667, abs=1e-3)

    def test_error_vector_flips_ranking(self, sensors_table, q1):
        too_low = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                error_vectors=-1.0)
        scorer = InfluenceScorer(too_low)
        ctx = scorer.outlier_contexts[0]
        influences = scorer.tuple_influences(ctx)
        # With v = −1 the paper says T6 scores −21.6 and T4 scores +10.8.
        assert influences[2] == pytest.approx(-21.667, abs=1e-3)
        assert influences[0] == pytest.approx(10.833, abs=1e-3)

    def test_t6_most_influential_with_positive_vector(self, paper_problem):
        scorer = scorer_for(paper_problem)
        ctx = next(c for c in scorer.outlier_contexts if c.key == ("12PM",))
        influences = scorer.tuple_influences(ctx)
        assert int(np.argmax(influences)) == 2


class TestDelta:
    def test_delta_empty_mask_is_zero(self, paper_problem):
        scorer = scorer_for(paper_problem)
        ctx = scorer.outlier_contexts[0]
        assert scorer.delta(ctx, np.zeros(3, dtype=bool)) == 0.0

    def test_delta_incremental_matches_recompute(self, paper_problem):
        fast = InfluenceScorer(paper_problem, use_incremental=True)
        slow = InfluenceScorer(paper_problem, use_incremental=False)
        mask = np.asarray([False, True, True])
        for f_ctx, s_ctx in zip(fast.contexts, slow.contexts):
            assert fast.delta(f_ctx, mask) == pytest.approx(slow.delta(s_ctx, mask))

    def test_delta_full_removal_avg_is_nan(self, paper_problem):
        scorer = scorer_for(paper_problem)
        ctx = scorer.outlier_contexts[0]
        assert np.isnan(scorer.delta(ctx, np.ones(3, dtype=bool)))

    def test_delta_full_removal_sum_uses_empty_value(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        ctx = scorer.outlier_contexts[0]
        delta = scorer.delta(ctx, np.ones(ctx.size, dtype=bool))
        assert delta == pytest.approx(ctx.total_value)

    def test_stats_count_incremental_deltas(self, paper_problem):
        scorer = scorer_for(paper_problem)
        ctx = scorer.outlier_contexts[0]
        scorer.delta(ctx, np.asarray([True, False, False]))
        assert scorer.stats.incremental_deltas == 1
        assert scorer.stats.full_recomputes == 0


class TestScore:
    def test_score_formula_single_outlier_no_holdout(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                error_vectors=+1.0, lam=0.5, c=1.0)
        scorer = InfluenceScorer(problem)
        p = Predicate([SetClause("sensorid", [3])])
        # Removing T6: Δ = 21.67, count 1 → inf = 21.67; score = λ·21.67.
        assert scorer.score(p) == pytest.approx(0.5 * 21.667, abs=1e-3)

    def test_score_averages_outliers(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([SetClause("sensorid", [3])])
        # 12PM: Δ = 21.67; 1PM: Δ = 50 − 35 = 15; holdout 11AM:
        # Δ = 34.67 − 34.5 = 0.1667 (removing T3 with temp 35).
        expected = 0.5 * (21.667 + 15.0) / 2 - 0.5 * abs(34.667 - 34.5)
        assert scorer.score(p) == pytest.approx(expected, abs=1e-3)

    def test_holdout_penalty_uses_max(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                holdouts=["11AM", "1PM"], error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        p = Predicate([SetClause("sensorid", [3])])
        outlier_only = scorer.outlier_only_score(p)
        with_holdouts = scorer.score(p)
        # 1PM is now a hold-out perturbed by 15 → dominates 11AM's 0.17.
        assert outlier_only - with_holdouts == pytest.approx(0.5 * 15.0, abs=1e-3)

    def test_lambda_weighting(self, sensors_table, q1):
        for lam in (0.0, 0.3, 1.0):
            problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                    holdouts=["11AM"], error_vectors=+1.0, lam=lam)
            scorer = InfluenceScorer(problem)
            p = Predicate([SetClause("sensorid", [3])])
            expected = lam * 21.667 - (1 - lam) * abs(34.667 - 34.5)
            assert scorer.score(p) == pytest.approx(expected, abs=1e-3)

    def test_c_knob(self, sensors_table, q1):
        problem = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                error_vectors=+1.0, c=0.0)
        scorer = InfluenceScorer(problem)
        p = Predicate([SetClause("sensorid", [2, 3])])  # removes T5, T6
        # Δ = 56.67 − 35 = 21.67 over 2 tuples; c = 0 → no denominator.
        assert scorer.score(p) == pytest.approx(0.5 * 21.667, abs=1e-3)
        problem1 = ScorpionQuery(sensors_table, q1, outliers=["12PM"],
                                 error_vectors=+1.0, c=1.0)
        scorer1 = InfluenceScorer(problem1)
        assert scorer1.score(p) == pytest.approx(0.5 * 21.667 / 2, abs=1e-3)

    def test_nonmatching_predicate_scores_zero(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([SetClause("sensorid", [99])])
        assert scorer.score(p) == 0.0

    def test_group_deleting_predicate_is_invalid(self, paper_problem):
        scorer = scorer_for(paper_problem)
        assert scorer.score(Predicate.true()) == INVALID_INFLUENCE

    def test_score_mask_equals_score(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([RangeClause("voltage", 2.0, 2.5)])
        assert scorer.score_mask(p.mask(scorer.table)) == pytest.approx(scorer.score(p))

    def test_score_cache_hits(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([SetClause("sensorid", [3])])
        scorer.score(p)
        before = scorer.stats.cache_hits
        scorer.score(p)
        assert scorer.stats.cache_hits == before + 1

    def test_score_predicate_on_non_rest_attribute(self, paper_problem):
        scorer = scorer_for(paper_problem)
        # temp is the aggregate attribute, not in A_rest: full-table path.
        p = Predicate([RangeClause("temp", 79.0, 120.0)])
        assert np.isfinite(scorer.score(p))


class TestBlackBoxPath:
    def test_median_requires_recompute(self, sensors_table):
        query = GroupByQuery("time", Median(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"],
                                error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        assert not scorer.uses_incremental
        p = Predicate([SetClause("sensorid", [3])])
        # median(35, 35, 100) = 35 → median(35, 35) = 35 → Δ = 0.
        assert scorer.score(p) == pytest.approx(0.0)
        assert scorer.stats.full_recomputes > 0

    def test_black_box_tuple_deltas(self, sensors_table):
        query = GroupByQuery("time", Median(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"],
                                error_vectors=+1.0)
        scorer = InfluenceScorer(problem)
        deltas = scorer.tuple_deltas(scorer.outlier_contexts[0])
        assert deltas[2] == pytest.approx(0.0)  # removing T6 leaves median 35


class TestBounds:
    def test_max_tuple_influence(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([SetClause("sensorid", [3])])
        # Best tuple is T6 at 21.67, scaled by λ/|O| = 0.25.
        assert scorer.max_tuple_influence(p) == pytest.approx(0.25 * 21.667, abs=1e-3)

    def test_max_tuple_influence_no_match(self, paper_problem):
        scorer = scorer_for(paper_problem)
        p = Predicate([SetClause("sensorid", [99])])
        assert scorer.max_tuple_influence(p) == INVALID_INFLUENCE

    def test_refinement_bound_at_c1_equals_tuple_bound_per_group(self, sum_problem):
        problem = sum_problem.with_c(1.0)
        scorer = InfluenceScorer(problem)
        p = Predicate([SetClause("state", ["TX"])])
        # For c = 1 the per-group prefix maximum sits at k = 1.
        assert scorer.refinement_bound(p) >= scorer.max_tuple_influence(p)

    def test_refinement_bound_dominates_outlier_only(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        for clause in (SetClause("state", ["TX"]), RangeClause("a1", 30.0, 70.0)):
            p = Predicate([clause])
            assert (scorer.refinement_bound(p)
                    >= scorer.outlier_only_score(p) - 1e-9)

    def test_refinement_bound_is_sound_for_contained_predicates(self, sum_problem):
        scorer = InfluenceScorer(sum_problem)
        coarse = Predicate([RangeClause("a1", 30.0, 70.0)])
        fine = Predicate([RangeClause("a1", 40.0, 60.0), SetClause("state", ["TX"])])
        assert coarse.contains(fine)
        assert scorer.refinement_bound(coarse) >= scorer.outlier_only_score(fine)
