"""Unit tests for the factorized ArrayMaskEvaluator."""

import numpy as np
import pytest

from repro.errors import PredicateError
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.evaluator import ArrayMaskEvaluator
from repro.predicates.predicate import Predicate

VALUES = {
    "x": np.asarray([0.0, 1.5, 3.0, 4.5]),
    "s": np.asarray(["a", "b", "a", "c"], dtype=object),
}


def evaluator() -> ArrayMaskEvaluator:
    return ArrayMaskEvaluator(VALUES)


def test_range_clause():
    mask = evaluator().clause_mask(RangeClause("x", 1.0, 3.0))
    assert mask.tolist() == [False, True, True, False]


def test_set_clause_single_value():
    mask = evaluator().clause_mask(SetClause("s", ["a"]))
    assert mask.tolist() == [True, False, True, False]


def test_set_clause_multiple_values():
    mask = evaluator().clause_mask(SetClause("s", ["a", "c"]))
    assert mask.tolist() == [True, False, True, True]


def test_set_clause_unknown_value():
    mask = evaluator().clause_mask(SetClause("s", ["zzz"]))
    assert not mask.any()


def test_conjunction():
    p = Predicate([RangeClause("x", 0.0, 3.0), SetClause("s", ["a"])])
    assert evaluator().mask(p).tolist() == [True, False, True, False]


def test_true_predicate():
    assert evaluator().mask(Predicate.true()).all()


def test_matches_table_independent_path():
    p = Predicate([RangeClause("x", 1.0, 4.5), SetClause("s", ["b", "c"])])
    expected = (RangeClause("x", 1.0, 4.5).mask_values(VALUES["x"])
                & SetClause("s", ["b", "c"]).mask_values(VALUES["s"]))
    np.testing.assert_array_equal(evaluator().mask(p), expected)


def test_unknown_attribute_rejected():
    with pytest.raises(PredicateError):
        evaluator().clause_mask(RangeClause("nope", 0, 1))


def test_kind_mismatch_rejected():
    with pytest.raises(PredicateError):
        evaluator().clause_mask(SetClause("x", [1.0]))


def test_length_mismatch_rejected():
    with pytest.raises(PredicateError):
        ArrayMaskEvaluator({"a": np.zeros(2), "b": np.zeros(3)})


def test_integer_arrays_are_discrete():
    ev = ArrayMaskEvaluator({"k": np.asarray([1, 2, 1], dtype=object)})
    assert ev.clause_mask(SetClause("k", [1])).tolist() == [True, False, True]


def test_supports():
    ev = evaluator()
    assert ev.supports("x") and ev.supports("s")
    assert not ev.supports("zz")


def test_supports_predicate():
    ev = evaluator()
    assert ev.supports_predicate(Predicate([RangeClause("x", 0, 1)]))
    assert not ev.supports_predicate(
        Predicate([RangeClause("x", 0, 1), RangeClause("zz", 0, 1)]))


def test_mixed_type_discrete_column_falls_back():
    # np.unique cannot sort ints against strings; the first-appearance
    # fallback must preserve code-table semantics.
    ev = ArrayMaskEvaluator({"k": np.asarray([1, "a", 1, "b"], dtype=object)})
    assert ev.clause_mask(SetClause("k", [1])).tolist() == [True, False, True, False]
    assert ev.clause_mask(SetClause("k", ["a", "b"])).tolist() == [False, True, False, True]
    assert not ev.clause_mask(SetClause("k", ["zzz"])).any()


BATCH = [
    Predicate.true(),
    Predicate([RangeClause("x", 1.0, 3.0)]),
    Predicate([RangeClause("x", 0.0, 3.0, include_hi=False)]),
    Predicate([SetClause("s", ["a"])]),
    Predicate([SetClause("s", ["zzz"])]),
    Predicate([RangeClause("x", 1.0, 4.5), SetClause("s", ["b", "c"])]),
    Predicate([RangeClause("x", 1.0, 3.0)]),  # duplicate row is fine
]


def test_evaluate_batch_rows_equal_single_masks():
    ev = evaluator()
    matrix = ev.evaluate_batch(BATCH)
    assert matrix.shape == (len(BATCH), ev.n_rows)
    assert matrix.dtype == bool
    for row, predicate in zip(matrix, BATCH):
        np.testing.assert_array_equal(row, ev.mask(predicate))


def test_evaluate_batch_empty_list():
    matrix = evaluator().evaluate_batch([])
    assert matrix.shape == (0, 4)


def test_evaluate_batch_unknown_attribute_rejected():
    with pytest.raises(PredicateError):
        evaluator().evaluate_batch([Predicate([RangeClause("nope", 0, 1)])])


def test_evaluate_batch_kind_mismatch_rejected():
    with pytest.raises(PredicateError):
        evaluator().evaluate_batch([Predicate([SetClause("x", [1.0])])])
