"""Unit + property tests for the aggregate framework (paper Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates import (
    Avg,
    Count,
    Max,
    Median,
    Min,
    StdDev,
    Sum,
    Variance,
    get_aggregate,
    list_aggregates,
    register_aggregate,
)
from repro.aggregates.base import AggregateFunction
from repro.errors import AggregateError

INCREMENTAL = [Sum(), Count(), Avg(), Variance(), StdDev()]
BLACK_BOX = [Min(), Max(), Median()]

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
value_lists = st.lists(floats, min_size=1, max_size=60)


class TestComputeValues:
    def test_sum(self):
        assert Sum().compute(np.asarray([1.0, 2.0, 3.0])) == 6.0

    def test_count(self):
        assert Count().compute(np.asarray([5.0, 5.0])) == 2.0

    def test_avg(self):
        assert Avg().compute(np.asarray([2.0, 4.0])) == 3.0

    def test_variance_population(self):
        assert Variance().compute(np.asarray([1.0, 3.0])) == pytest.approx(1.0)

    def test_stddev(self):
        assert StdDev().compute(np.asarray([1.0, 3.0])) == pytest.approx(1.0)

    def test_min_max_median(self):
        data = np.asarray([3.0, 1.0, 2.0])
        assert Min().compute(data) == 1.0
        assert Max().compute(data) == 3.0
        assert Median().compute(data) == 2.0

    def test_paper_q1_group_averages(self):
        # Table 2 of the paper: avg temps 34.6, 56.6, 50.
        avg = Avg()
        assert avg.compute(np.asarray([34.0, 35, 35])) == pytest.approx(34.667, abs=1e-3)
        assert avg.compute(np.asarray([35.0, 35, 100])) == pytest.approx(56.667, abs=1e-3)
        assert avg.compute(np.asarray([35.0, 35, 80])) == pytest.approx(50.0)


class TestEmptyInput:
    def test_sum_count_have_empty_values(self):
        assert Sum().compute(np.asarray([])) == 0.0
        assert Count().compute(np.asarray([])) == 0.0

    @pytest.mark.parametrize("agg", [Avg(), Variance(), StdDev(), Min(), Max(), Median()])
    def test_undefined_on_empty(self, agg):
        with pytest.raises(AggregateError):
            agg.compute(np.asarray([]))


class TestProperties:
    def test_independence_flags(self):
        for agg in INCREMENTAL:
            assert agg.is_independent, agg.name
        for agg in BLACK_BOX:
            assert not agg.is_independent, agg.name

    def test_incremental_flags(self):
        for agg in INCREMENTAL:
            assert agg.is_incrementally_removable, agg.name
        for agg in BLACK_BOX:
            assert not agg.is_incrementally_removable, agg.name

    def test_count_always_anti_monotone(self):
        assert Count().check(np.asarray([-5.0, 3.0]))

    def test_max_always_anti_monotone(self):
        assert Max().check(np.asarray([-5.0, 3.0]))

    def test_sum_anti_monotone_only_non_negative(self):
        assert Sum().check(np.asarray([0.0, 1.0]))
        assert not Sum().check(np.asarray([-0.1, 1.0]))

    def test_avg_not_anti_monotone(self):
        assert not Avg().check(np.asarray([1.0, 2.0]))

    def test_black_box_state_protocol_rejected(self):
        with pytest.raises(AggregateError):
            Min().state(np.asarray([1.0]))
        with pytest.raises(AggregateError):
            Median().tuple_states(np.asarray([1.0]))


class TestStateProtocol:
    """The Section 5.1 contract: recover(remove(state(D), state(S))) ==
    compute(D − S)."""

    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_state_update_remove_recover(self, agg):
        data = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        subset = data[:2]
        rest = data[2:]
        removed = agg.remove(agg.state(data), agg.state(subset))
        assert agg.recover(removed) == pytest.approx(agg.compute(rest))

    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_update_combines_partitions(self, agg):
        left = np.asarray([1.0, 2.0])
        right = np.asarray([3.0, 4.0, 5.0])
        combined = agg.update(agg.state(left), agg.state(right))
        both = np.concatenate([left, right])
        assert agg.recover(combined) == pytest.approx(agg.compute(both))

    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_update_no_args_is_empty_state(self, agg):
        assert agg.update().tolist() == [0.0] * agg.state_size

    def test_remove_over_subtraction_rejected(self):
        avg = Avg()
        with pytest.raises(AggregateError, match="negative count"):
            avg.remove(avg.state(np.asarray([1.0])), avg.state(np.asarray([1.0, 2.0])))

    def test_update_wrong_shape_rejected(self):
        with pytest.raises(AggregateError):
            Avg().update(np.zeros(5))

    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_tuple_states_sum_to_state(self, agg):
        data = np.asarray([2.0, 4.0, 8.0])
        np.testing.assert_allclose(agg.tuple_states(data).sum(axis=0), agg.state(data))

    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_recover_batch_matches_recover(self, agg):
        data = np.asarray([1.0, 5.0, 9.0, 2.0])
        states = np.vstack([
            agg.state(data),
            agg.state(data[:2]),
            agg.state(data[1:]),
        ])
        batch = agg.recover_batch(states)
        for row, expected_data in zip(batch, [data, data[:2], data[1:]]):
            assert row == pytest.approx(agg.compute(expected_data))

    @pytest.mark.parametrize("agg", [Avg(), Variance(), StdDev()])
    def test_recover_batch_empty_state_is_nan(self, agg):
        empty = np.zeros((1, agg.state_size))
        assert np.isnan(agg.recover_batch(empty)[0])

    def test_recover_batch_default_loop_path(self):
        class Weird(AggregateFunction):
            name = "weird"

            def compute(self, values):
                return float(np.sum(values))

        # The default recover_batch raises because the protocol is absent.
        with pytest.raises(AggregateError):
            Weird().recover_batch(np.zeros((1, 2)))


class TestIncrementalRemovalProperty:
    """Property-based check of Section 5.1 on random data and subsets."""

    @settings(max_examples=60, deadline=None)
    @given(values=value_lists, data=st.data())
    @pytest.mark.parametrize("agg", INCREMENTAL)
    def test_matches_recompute(self, agg, values, data):
        array = np.asarray(values)
        mask_bits = data.draw(st.lists(
            st.booleans(), min_size=len(array), max_size=len(array)))
        mask = np.asarray(mask_bits, dtype=bool)
        if mask.all():
            mask[0] = False  # keep the remainder non-empty for AVG et al.
        removed = agg.remove(agg.state(array), agg.state(array[mask]))
        expected = agg.compute(array[~mask])
        # Sum-of-squares states cancel catastrophically for huge values;
        # the achievable absolute error scales with max(|v|)².
        scale = 1.0 + float(np.max(np.abs(array))) ** 2
        assert agg.recover(removed) == pytest.approx(
            expected, rel=1e-6, abs=1e-9 * scale)


class TestRegistry:
    def test_builtins_registered(self):
        names = list_aggregates()
        for expected in ("sum", "count", "avg", "stddev", "variance",
                         "min", "max", "median"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert get_aggregate("AVG").name == "avg"

    def test_unknown_rejected(self):
        with pytest.raises(AggregateError):
            get_aggregate("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AggregateError):
            register_aggregate(Sum())

    def test_replace_allows_reregistration(self):
        register_aggregate(Sum(), replace=True)
        assert get_aggregate("sum") == Sum()

    def test_custom_aggregate(self):
        class Range(AggregateFunction):
            name = "range_test_only"

            def compute(self, values):
                values = np.asarray(values, dtype=np.float64)
                if len(values) == 0:
                    raise AggregateError("range undefined on empty input")
                return float(np.max(values) - np.min(values))

        register_aggregate(Range(), replace=True)
        assert get_aggregate("range_test_only").compute(np.asarray([1.0, 4.0])) == 3.0
