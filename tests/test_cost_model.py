"""The planner's cost model (:mod:`repro.index.cost`).

Three layers of lock-down:

* **properties** — the route formulas are monotone in every size
  parameter (a bigger workload never gets cheaper), so a wrong constant
  can shift a routing threshold but never invert the ordering within
  one route;
* **argmin** — the planner's routing decision always agrees with the
  priced comparison it claims to make: a predicate lands on a tier iff
  that tier's estimate is no worse than the mask kernel's (no dominated
  route is ever selected);
* **regression** — the shipped :data:`DEFAULT_CONSTANTS` make the
  decisions the benchmarks rely on at the ``BENCH_scorer.json`` shape
  (10 groups x 500 rows): singles on the index, narrow conjunction
  probes on the conjunction tier, full-domain probes on the mask
  kernel.

Calibration itself is covered by a real measurement pass (constants
land inside the clamp window, the pass runs at most once per process).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import (
    DEFAULT_CONSTANTS,
    CostModel,
    IndexPlanner,
    PrefixAggregateIndex,
    force_index_model,
    force_mask_model,
)
from repro.index import cost
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate

BENCH_GROUPS, BENCH_GROUP_SIZE = 10, 500


def build_index(n_groups: int, group_size: int,
                seed: int = 7) -> PrefixAggregateIndex:
    """A synthetic exactly-summable index: two continuous attributes
    and one 16-code discrete attribute, integer per-row weights."""
    rng = np.random.default_rng(seed)
    n = n_groups * group_size
    slices = [(g * group_size, (g + 1) * group_size)
              for g in range(n_groups)]
    states = np.stack([rng.integers(1, 50, n).astype(np.float64),
                       np.ones(n)], axis=1)
    codes = rng.integers(0, 16, n).astype(np.int64)
    index = PrefixAggregateIndex(
        {"a": rng.uniform(0.0, 100.0, n),
         "b": rng.uniform(0.0, 100.0, n)},
        slices,
        [states[lo:hi] for lo, hi in slices],
        codes_by_attr={"d": codes},
        code_tables={"d": {value: value for value in range(16)}},
    )
    index.ensure("a")
    index.ensure("b")
    index.ensure_discrete("d")
    return index


@pytest.fixture(scope="module")
def bench_index() -> PrefixAggregateIndex:
    return build_index(BENCH_GROUPS, BENCH_GROUP_SIZE)


def planner_for(index: PrefixAggregateIndex) -> IndexPlanner:
    """A fresh planner pinned to the shipped constants (machine-speed
    independent — never the possibly-calibrated shared singleton)."""
    return IndexPlanner(index, CostModel(DEFAULT_CONSTANTS))


# ----------------------------------------------------------------------
# Formula properties
# ----------------------------------------------------------------------
class TestCostMonotonicity:
    """Every route estimate is non-decreasing in every size parameter
    and strictly positive — the orderings routing relies on."""

    model = CostModel(DEFAULT_CONSTANTS)

    @settings(max_examples=80, deadline=None)
    @given(n=st.integers(1, 1_000_000), k=st.integers(0, 1_000_000),
           dn=st.integers(0, 1_000_000), dk=st.integers(0, 1_000_000),
           q_r=st.integers(0, 4), q_s=st.integers(0, 4))
    def test_mask_cost(self, n, k, dn, dk, q_r, q_s):
        k = min(k, n)
        base = self.model.mask_cost(n, k, q_r, q_s)
        assert base > 0
        assert self.model.mask_cost(n + dn, k, q_r, q_s) >= base
        assert self.model.mask_cost(n, k + dk, q_r, q_s) >= base
        assert self.model.mask_cost(n, k, q_r + 1, q_s) >= base
        assert self.model.mask_cost(n, k, q_r, q_s + 1) >= base

    @settings(max_examples=80, deadline=None)
    @given(groups=st.integers(1, 100_000), k=st.integers(0, 1_000_000),
           dg=st.integers(0, 100_000), dk=st.integers(0, 1_000_000),
           exact=st.booleans())
    def test_range_cost(self, groups, k, dg, dk, exact):
        base = self.model.range_cost(groups, k, exact)
        assert base > 0
        assert self.model.range_cost(groups + dg, k, exact) >= base
        assert self.model.range_cost(groups, k + dk, exact) >= base
        # The all-exact prefix tier never costs more than gathering.
        assert self.model.range_cost(groups, k, True) <= base

    @settings(max_examples=80, deadline=None)
    @given(groups=st.integers(1, 100_000), codes=st.integers(0, 4096),
           k=st.integers(0, 1_000_000), dg=st.integers(0, 100_000),
           dc=st.integers(0, 4096), dk=st.integers(0, 1_000_000),
           exact=st.booleans())
    def test_set_cost(self, groups, codes, k, dg, dc, dk, exact):
        base = self.model.set_cost(groups, codes, k, exact)
        assert base > 0
        assert self.model.set_cost(groups + dg, codes, k, exact) >= base
        assert self.model.set_cost(groups, codes + dc, k, exact) >= base
        assert self.model.set_cost(groups, codes, k + dk, exact) >= base
        assert self.model.set_cost(groups, codes, k, True) <= base

    @settings(max_examples=80, deadline=None)
    @given(groups=st.integers(1, 100_000), k=st.integers(0, 1_000_000),
           codes=st.integers(0, 4096), dg=st.integers(0, 100_000),
           dk=st.integers(0, 1_000_000), dc=st.integers(0, 4096))
    def test_conjunction_cost(self, groups, k, codes, dg, dk, dc):
        base = self.model.conjunction_cost(groups, k, True, codes)
        assert base > 0
        assert self.model.conjunction_cost(groups + dg, k, True,
                                           codes) >= base
        assert self.model.conjunction_cost(groups, k + dk, True,
                                           codes) >= base
        assert self.model.conjunction_cost(groups, k, True,
                                           codes + dc) >= base
        # A range probe is a set probe minus the per-code lookups.
        assert self.model.conjunction_cost(groups, k, False) <= base

    def test_equal_constants_price_identically(self):
        other = CostModel(dataclasses.replace(DEFAULT_CONSTANTS))
        assert other.mask_cost(5000, 250) == self.model.mask_cost(5000, 250)
        assert other.conjunction_cost(10, 100, True, 4) == \
            self.model.conjunction_cost(10, 100, True, 4)


class TestChooseTiling:
    """Group-axis tiling is deterministic pure arithmetic with sane
    bounds — the parallel executor's serial-equality proof leans on
    every process computing the same answer."""

    model = CostModel(DEFAULT_CONSTANTS)

    def test_degenerate_shapes_decline(self):
        assert self.model.choose_tiling(0, 64, 10_000, 4, 8) is None
        assert self.model.choose_tiling(16, 64, 10_000, 1, 8) is None
        assert self.model.choose_tiling(16, 1, 10_000, 4, 8) is None

    def test_saturated_predicate_axis_declines(self):
        # 64 predicates / chunk 8 = 8 shards >= 2 x 4 workers.
        assert self.model.choose_tiling(64, 64, 100_000, 4, 8) is None

    def test_tiny_tiles_decline(self):
        # Plenty of groups but almost no rows: a tile's work would be
        # dwarfed by pool dispatch overhead.
        assert self.model.choose_tiling(4, 64, 64, 4, 8) is None

    def test_few_predicates_many_groups_tiles(self):
        chunk = self.model.choose_tiling(4, 64, 1_000_000, 4, 8)
        assert chunk is not None and 1 <= chunk < 64

    @settings(max_examples=100, deadline=None)
    @given(n_predicates=st.integers(0, 512), n_groups=st.integers(0, 512),
           n_rows=st.integers(0, 2_000_000), workers=st.integers(1, 16),
           batch_chunk=st.integers(1, 1024))
    def test_deterministic_and_bounded(self, n_predicates, n_groups,
                                       n_rows, workers, batch_chunk):
        first = self.model.choose_tiling(n_predicates, n_groups, n_rows,
                                         workers, batch_chunk)
        again = self.model.choose_tiling(n_predicates, n_groups, n_rows,
                                         workers, batch_chunk)
        assert first == again
        if first is not None:
            assert 1 <= first <= n_groups
            tiles = -(-n_groups // first)
            assert tiles >= 2


# ----------------------------------------------------------------------
# Argmin: routing always matches the priced comparison
# ----------------------------------------------------------------------
class TestArgminNeverDominated:
    @settings(max_examples=60, deadline=None)
    @given(lo1=st.floats(0.0, 95.0), w1=st.floats(0.1, 100.0),
           lo2=st.floats(0.0, 95.0), w2=st.floats(0.1, 100.0))
    def test_conjunction_routing_matches_prices(self, bench_index,
                                                lo1, w1, lo2, w2):
        predicate = Predicate([
            RangeClause("a", lo1, min(lo1 + w1, 100.0)),
            RangeClause("b", lo2, min(lo2 + w2, 100.0)),
        ])
        planner = planner_for(bench_index)
        route = planner.partition([predicate])
        model = planner.cost_model
        k_probe = min(bench_index.estimate_clause_count(c)
                      for c in predicate.clauses)
        tier = model.conjunction_cost(bench_index.n_groups, k_probe, False)
        mask = model.mask_cost(bench_index.n_labeled_rows, k_probe / 2,
                               n_range_clauses=2)
        if tier <= mask:
            assert [p for p, _ in route.conjunctions] == [predicate]
            assert route.cost_routed_conj == 1
            assert route.conjunction_fallbacks == 0
        else:
            assert route.masked == [predicate]
            assert route.cost_routed_mask == 1
            assert route.conjunction_fallbacks == 1

    def test_probe_is_the_rarer_side(self, bench_index):
        rare = RangeClause("a", 10.0, 11.0)
        common = RangeClause("b", 0.0, 100.0)
        planner = planner_for(bench_index)
        plan = planner.plan_conjunction(Predicate([common, rare]))
        assert plan is not None
        assert plan.probe == rare
        assert plan.other == common
        assert plan.probe_count == bench_index.estimate_clause_count(rare)

    def test_single_decisions_match_prices(self, bench_index):
        planner = planner_for(bench_index)
        model = planner.cost_model
        n = bench_index.n_labeled_rows
        groups = bench_index.n_groups
        exact = bench_index.all_exact
        assert planner.single_range_decision() == (
            model.range_cost(groups, n, exact)
            <= model.mask_cost(n, n, n_range_clauses=1))
        assert planner.single_set_decision(4) == (
            model.set_cost(groups, 4, n, exact)
            <= model.mask_cost(n, n, n_range_clauses=0, n_set_clauses=1))


# ----------------------------------------------------------------------
# Regression: shipped constants at the benchmark shape
# ----------------------------------------------------------------------
class TestDefaultRoutingRegression:
    """Pin the decisions ``BENCH_scorer.json`` depends on.  If a
    constants change flips one of these, the benchmark bars move — this
    failure names the decision that did it."""

    def test_singles_route_to_index(self, bench_index):
        planner = planner_for(bench_index)
        route = planner.partition([
            Predicate([RangeClause("a", 20.0, 30.0)]),
            Predicate([SetClause("d", [1, 2, 3])]),
        ])
        assert len(route.ranges) == 1
        assert len(route.sets) == 1
        assert route.cost_routed_prefix == 1
        assert route.cost_routed_bucket == 1
        assert route.cost_routed_mask == 0

    def test_narrow_conjunction_routes_to_conj_tier(self, bench_index):
        planner = planner_for(bench_index)
        narrow = Predicate([RangeClause("a", 40.0, 44.0),
                            RangeClause("b", 0.0, 100.0)])
        route = planner.partition([narrow])
        assert route.cost_routed_conj == 1
        assert route.conjunction_fallbacks == 0

    def test_full_domain_conjunction_routes_to_mask(self, bench_index):
        planner = planner_for(bench_index)
        wide = Predicate([RangeClause("a", 0.0, 100.0),
                          RangeClause("b", 0.0, 100.0)])
        route = planner.partition([wide])
        assert route.masked == [wide]
        assert route.cost_routed_mask == 1
        assert route.conjunction_fallbacks == 1

    def test_small_fixture_conjunctions_prefer_mask(self):
        """At the golden-test shape (4 groups x 120 rows) even narrow
        conjunction probes stay on the mask kernel — the reason
        tier-engagement tests pin :func:`force_index_model`."""
        small = build_index(4, 120)
        planner = planner_for(small)
        narrow = Predicate([RangeClause("a", 40.0, 44.0),
                            RangeClause("b", 0.0, 100.0)])
        route = planner.partition([narrow])
        assert route.masked == [narrow]
        assert route.cost_routed_mask == 1

    def test_forced_models_override_economics(self, bench_index):
        wide = Predicate([RangeClause("a", 0.0, 100.0),
                          RangeClause("b", 0.0, 100.0)])
        single = Predicate([RangeClause("a", 20.0, 30.0)])
        forced_index = IndexPlanner(bench_index, force_index_model())
        route = forced_index.partition([wide, single])
        assert route.cost_routed_conj == 1
        assert len(route.ranges) == 1
        forced_mask = IndexPlanner(bench_index, force_mask_model())
        route = forced_mask.partition([wide, single])
        assert route.indexed_total == 0
        assert route.cost_routed_mask == 2


# ----------------------------------------------------------------------
# Group-range restriction: the tier kernels under a group-axis tile
# ----------------------------------------------------------------------
class TestGroupRangeRestriction:
    """``group_range=(lo, hi)`` — the parallel executor's group-axis
    tiles — must return full-width arrays that equal the unrestricted
    answer inside ``[lo, hi)`` and zero outside.  Asserted directly
    here (the differential oracle only reaches these paths through
    worker processes)."""

    RANGE = (3, 7)

    def assert_restricted(self, full, tiled):
        lo, hi = self.RANGE
        for whole, part in zip(full, tiled):
            assert part.shape == whole.shape
            np.testing.assert_array_equal(part[:, lo:hi], whole[:, lo:hi])
            assert not part[:, :lo].any()
            assert not part[:, hi:].any()

    def test_range_tier(self, bench_index):
        los, his = np.asarray([10.0, 0.0]), np.asarray([30.0, 100.0])
        closed = np.asarray([True, False])
        self.assert_restricted(
            bench_index.range_group_stats("a", los, his, closed),
            bench_index.range_group_stats("a", los, his, closed,
                                          group_range=self.RANGE))

    def test_set_tier(self, bench_index):
        wanted = [np.asarray([1, 5], dtype=np.int64),
                  np.asarray([0], dtype=np.int64)]
        self.assert_restricted(
            bench_index.set_group_stats("d", wanted),
            bench_index.set_group_stats("d", wanted,
                                        group_range=self.RANGE))

    def test_conjunction_tier(self, bench_index):
        plans = [(RangeClause("a", 40.0, 44.0),
                  RangeClause("b", 0.0, 50.0))]
        self.assert_restricted(
            bench_index.conjunction_group_stats(plans),
            bench_index.conjunction_group_stats(plans,
                                                group_range=self.RANGE))

    def test_out_of_bounds_ranges_clip(self, bench_index):
        los, his = np.asarray([10.0]), np.asarray([30.0])
        closed = np.asarray([True])
        full = bench_index.range_group_stats("a", los, his, closed)
        clipped = bench_index.range_group_stats(
            "a", los, his, closed,
            group_range=(-3, bench_index.n_groups + 5))
        for whole, part in zip(full, clipped):
            np.testing.assert_array_equal(part, whole)


# ----------------------------------------------------------------------
# Calibration and the shared singleton
# ----------------------------------------------------------------------
@pytest.fixture
def restore_shared():
    """Snapshot the process-wide shared model around a test that
    re-resolves it, so the rest of the suite keeps its routing."""
    previous = cost._SHARED
    yield
    cost.set_shared(previous)


class TestCalibration:
    def test_off_uses_defaults_deterministically(self, restore_shared,
                                                 monkeypatch):
        monkeypatch.setenv("SCORPION_COST_CALIBRATE", "off")
        before = cost.calibration_count()
        cost.reset_shared()
        model = CostModel.shared()
        assert model.constants == DEFAULT_CONSTANTS
        assert cost.calibration_count() == before
        assert CostModel.shared() is model

    def test_on_measures_once_within_clamp(self, restore_shared,
                                           monkeypatch):
        monkeypatch.delenv("SCORPION_COST_CALIBRATE", raising=False)
        before = cost.calibration_count()
        cost.reset_shared()
        model = CostModel.shared()
        assert cost.calibration_count() == before + 1
        measured = model.constants
        for name in ("mask_row", "mask_clause", "mask_set_clause",
                     "scatter_row", "range_group", "range_batch_group",
                     "gather_row", "bucket_group", "bucket_code",
                     "bucket_batch_group", "conj_row", "conj_group",
                     "conj_batch_group"):
            value = getattr(measured, name)
            default = getattr(DEFAULT_CONSTANTS, name)
            assert default / cost.CLAMP <= value <= default * cost.CLAMP, name
        # The per-predicate fixed overheads are not fitted.
        assert measured.mask_pred == DEFAULT_CONSTANTS.mask_pred
        assert measured.tier_pred == DEFAULT_CONSTANTS.tier_pred
        # The singleton is cached: no second measurement pass.
        assert CostModel.shared() is model
        assert cost.calibration_count() == before + 1

    def test_calibration_enabled_parses_the_knob(self, monkeypatch):
        for raw in ("off", "0", "false", "no", "OFF", " False "):
            monkeypatch.setenv("SCORPION_COST_CALIBRATE", raw)
            assert not cost.calibration_enabled()
        for raw in ("on", "1", "yes", ""):
            monkeypatch.setenv("SCORPION_COST_CALIBRATE", raw)
            assert cost.calibration_enabled()
        monkeypatch.delenv("SCORPION_COST_CALIBRATE")
        assert cost.calibration_enabled()
