"""Unit tests for precision/recall/F-score evaluation (Section 8.2)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.eval.metrics import AccuracyStats, confusion_counts, score_predicate
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate
from repro.table import ColumnKind, ColumnSpec, Schema, Table

TABLE = Table.from_columns(
    Schema([ColumnSpec("x", ColumnKind.CONTINUOUS)]),
    {"x": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]},
)


class TestAccuracyStats:
    def test_perfect(self):
        stats = AccuracyStats(10, 0, 0)
        assert stats.precision == 1.0
        assert stats.recall == 1.0
        assert stats.f_score == 1.0

    def test_fscore_harmonic_mean(self):
        stats = AccuracyStats(true_positives=1, false_positives=1,
                              false_negatives=3)
        assert stats.precision == 0.5
        assert stats.recall == 0.25
        assert stats.f_score == pytest.approx(2 * 0.5 * 0.25 / 0.75)

    def test_empty_selection(self):
        stats = AccuracyStats(0, 0, 5)
        assert stats.precision == 0.0
        assert stats.recall == 0.0
        assert stats.f_score == 0.0

    def test_empty_truth(self):
        stats = AccuracyStats(0, 5, 0)
        assert stats.recall == 0.0
        assert stats.f_score == 0.0


class TestConfusionCounts:
    def test_counts(self):
        selected = np.asarray([True, True, False, False])
        truth = np.asarray([True, False, True, False])
        stats = confusion_counts(selected, truth)
        assert (stats.true_positives, stats.false_positives,
                stats.false_negatives) == (1, 1, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            confusion_counts(np.asarray([True]), np.asarray([True, False]))


class TestScorePredicate:
    def test_against_whole_table(self):
        p = Predicate([RangeClause("x", 0.0, 2.0)])
        truth = np.asarray([True, True, True, False, False, False])
        stats = score_predicate(p, TABLE, truth)
        assert stats.f_score == 1.0

    def test_restricted_to_outlier_rows(self):
        p = Predicate([RangeClause("x", 0.0, 5.0)])  # matches everything
        truth = np.asarray([True, False, False, False, False, False])
        # Restricted to rows {0, 1}: selected = both, truth = row 0 only.
        stats = score_predicate(p, TABLE, truth, outlier_rows=np.asarray([0, 1]))
        assert stats.true_positives == 1
        assert stats.false_positives == 1
        assert stats.false_negatives == 0

    def test_restriction_changes_score(self):
        p = Predicate([RangeClause("x", 0.0, 1.0)])
        truth = np.asarray([True, True, False, False, True, True])
        unrestricted = score_predicate(p, TABLE, truth)
        restricted = score_predicate(p, TABLE, truth,
                                     outlier_rows=np.asarray([0, 1, 2]))
        assert restricted.recall > unrestricted.recall

    def test_wrong_truth_shape_rejected(self):
        p = Predicate([RangeClause("x", 0.0, 1.0)])
        with pytest.raises(DatasetError):
            score_predicate(p, TABLE, np.asarray([True]))
