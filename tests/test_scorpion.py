"""Unit tests for the Scorpion facade (Figure 2's pipeline)."""

import numpy as np
import pytest

from repro.aggregates import Avg, Median, StdDev, Sum
from repro.core.dt import DTPartitioner
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.errors import PartitionerError
from repro.query.groupby import GroupByQuery

from tests.conftest import planted_sum_table


class TestAlgorithmSelection:
    def test_auto_picks_mc_for_sum_non_negative(self, sum_problem):
        result = Scorpion().explain(sum_problem)
        assert result.algorithm == "mc"

    def test_auto_picks_dt_for_avg(self, paper_problem):
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(
            paper_problem)
        assert result.algorithm == "dt"

    def test_auto_picks_dt_when_check_fails(self):
        table, outliers, holdouts = planted_sum_table(n_per_group=60)
        # Negate one value so SUM's non-negativity check fails.
        values = table.values("value").copy()
        values[0] = -1.0
        from repro.table.table import Table
        from repro.table.column import Column
        columns = [table.column(n) if n != "value"
                   else Column(table.schema["value"], values)
                   for n in table.schema.names]
        negated = Table(columns)
        problem = ScorpionQuery(negated, GroupByQuery("g", Avg(), "value"),
                                outliers=outliers, holdouts=holdouts)
        scorpion = Scorpion()
        picked = scorpion._pick_partitioner(
            problem, __import__("repro.core.influence",
                                fromlist=["InfluenceScorer"]).InfluenceScorer(problem))
        assert isinstance(picked, DTPartitioner)

    def test_auto_picks_naive_for_black_box(self, sensors_table):
        query = GroupByQuery("time", Median(), "temp")
        problem = ScorpionQuery(sensors_table, query, outliers=["12PM"],
                                error_vectors=+1.0)
        scorpion = Scorpion(top_k=3)
        scorpion.partitioner = None
        from repro.core.naive import NaivePartitioner
        picked = scorpion._pick_partitioner(
            problem, __import__("repro.core.influence",
                                fromlist=["InfluenceScorer"]).InfluenceScorer(problem))
        assert isinstance(picked, NaivePartitioner)

    def test_forced_algorithm(self, sum_problem):
        result = Scorpion(algorithm="naive").explain(sum_problem)
        assert result.algorithm == "naive"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(PartitionerError):
            Scorpion(algorithm="zigzag")

    def test_bad_top_k_rejected(self):
        with pytest.raises(PartitionerError):
            Scorpion(top_k=0)


class TestExplanations:
    def test_paper_example_explanation(self, paper_problem):
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(
            paper_problem)
        best = result.best
        assert best is not None
        mask = best.predicate.mask(paper_problem.table)
        assert mask[5] and mask[8], "must remove the sensor-3 anomalies"

    def test_updated_outputs_look_normal(self, paper_problem):
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(
            paper_problem)
        best = result.best
        # Removing the explanation's tuples pulls 12PM/1PM back to ~35.
        for key in (("12PM",), ("1PM",)):
            assert best.updated_outliers[key] == pytest.approx(35.0, abs=1.0)

    def test_updated_holdouts_reported(self, paper_problem):
        result = Scorpion(partitioner=DTPartitioner(min_leaf_size=2)).explain(
            paper_problem)
        assert ("11AM",) in result.best.updated_holdouts

    def test_top_k_limits_explanations(self, sum_problem):
        result = Scorpion(algorithm="mc", top_k=2).explain(sum_problem)
        assert len(result.explanations) <= 2

    def test_explanations_sorted(self, sum_problem):
        result = Scorpion(algorithm="mc", top_k=5).explain(sum_problem)
        influences = [e.influence for e in result.explanations]
        assert influences == sorted(influences, reverse=True)

    def test_n_matched_counts_rows(self, sum_problem):
        result = Scorpion(algorithm="mc").explain(sum_problem)
        best = result.best
        assert best.n_matched == int(best.predicate.mask(sum_problem.table).sum())

    def test_predicates_simplified(self):
        # A full-domain clause must not survive into the explanation.
        table, outliers, holdouts = planted_sum_table(n_per_group=150)
        problem = ScorpionQuery(table, GroupByQuery("g", Sum(), "value"),
                                outliers=outliers, holdouts=holdouts, c=0.5)
        result = Scorpion(algorithm="dt").explain(problem)
        for explanation in result.explanations:
            for clause in explanation.predicate:
                full = problem.domain[clause.attribute].full_clause()
                assert not clause.contains(full)

    def test_result_metadata(self, sum_problem):
        result = Scorpion(algorithm="mc").explain(sum_problem)
        assert result.elapsed > 0
        # MC's 1-clause cells and 2-clause intersections all fit the
        # index tiers on this problem, so the mask kernel may see zero
        # predicates — but *something* must have been scored.
        scored = (result.scorer_stats["mask_scores"]
                  + result.scorer_stats["indexed_predicates"])
        assert scored > 0


class TestAutoAttributeSelection:
    """The Section 6.4 extension wired into the facade."""

    def _noisy_problem(self, seed=11):
        rng = np.random.default_rng(seed)
        n_groups, per_group = 4, 200
        n = n_groups * per_group
        groups = np.repeat([f"g{i}" for i in range(n_groups)], per_group)
        x = rng.uniform(0, 100, n)
        noise1 = rng.uniform(0, 100, n)
        noise2 = rng.choice(["p", "q", "r"], n)
        value = rng.normal(10, 1, n)
        hot = np.isin(groups, ["g0", "g1"]) & (x > 70)
        value[hot] += 60
        from repro.table import ColumnKind, ColumnSpec, Schema, Table
        table = Table.from_columns(
            Schema([ColumnSpec("g", ColumnKind.DISCRETE),
                    ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("noise1", ColumnKind.CONTINUOUS),
                    ColumnSpec("noise2", ColumnKind.DISCRETE),
                    ColumnSpec("v", ColumnKind.CONTINUOUS)]),
            {"g": groups, "x": x, "noise1": noise1, "noise2": noise2,
             "v": value})
        return ScorpionQuery(table, GroupByQuery("g", Avg(), "v"),
                             outliers=["g0", "g1"], holdouts=["g2", "g3"],
                             error_vectors=+1.0, c=0.3)

    def test_noise_attributes_dropped_from_explanations(self):
        problem = self._noisy_problem()
        scorpion = Scorpion(algorithm="dt", auto_select_attributes=True)
        result = scorpion.explain(problem)
        attrs = set(result.best.predicate.attributes)
        assert "x" in attrs or attrs <= {"x"}
        assert "noise1" not in attrs
        assert "noise2" not in attrs

    def test_same_answer_as_manual_selection(self):
        problem = self._noisy_problem()
        auto = Scorpion(algorithm="dt", auto_select_attributes=True).explain(problem)
        clause = auto.best.predicate.clause_for("x")
        assert clause is not None and clause.lo >= 60

    def test_disabled_by_default(self):
        problem = self._noisy_problem()
        scorpion = Scorpion(algorithm="dt")
        assert not scorpion.auto_select_attributes
        result = scorpion.explain(problem)
        assert result.best is not None


class TestRealisticPipelines:
    def test_stddev_pipeline(self):
        rng = np.random.default_rng(5)
        n_groups, per_group = 6, 200
        groups = np.repeat([f"h{i}" for i in range(n_groups)], per_group)
        sensor = rng.integers(1, 11, n_groups * per_group)
        temp = rng.normal(20, 1, n_groups * per_group)
        bad = np.isin(groups, ["h0", "h1"]) & (sensor == 7)
        temp[bad] = rng.uniform(90, 110, int(bad.sum()))
        from repro.table import ColumnKind, ColumnSpec, Schema, Table
        table = Table.from_columns(
            Schema([ColumnSpec("hour", ColumnKind.DISCRETE),
                    ColumnSpec("sensor", ColumnKind.DISCRETE),
                    ColumnSpec("temp", ColumnKind.CONTINUOUS)]),
            {"hour": groups, "sensor": sensor, "temp": temp})
        problem = ScorpionQuery(table, GroupByQuery("hour", StdDev(), "temp"),
                                outliers=["h0", "h1"],
                                holdouts=[f"h{i}" for i in range(2, 6)],
                                error_vectors=+1.0, c=0.5)
        result = Scorpion().explain(problem)
        assert result.algorithm == "dt"
        clause = result.best.predicate.clause_for("sensor")
        assert clause is not None and 7 in clause.values
