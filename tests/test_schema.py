"""Unit tests for repro.table.schema."""

import pytest

from repro.errors import SchemaError
from repro.table.schema import ColumnKind, ColumnSpec, Schema


class TestColumnSpec:
    def test_continuous_flags(self):
        spec = ColumnSpec("temp", ColumnKind.CONTINUOUS)
        assert spec.is_continuous
        assert not spec.is_discrete

    def test_discrete_flags(self):
        spec = ColumnSpec("sensorid", ColumnKind.DISCRETE)
        assert spec.is_discrete
        assert not spec.is_continuous

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", ColumnKind.CONTINUOUS)

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec(123, ColumnKind.CONTINUOUS)

    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "continuous")

    def test_equality_and_hash(self):
        a = ColumnSpec("x", ColumnKind.CONTINUOUS)
        b = ColumnSpec("x", ColumnKind.CONTINUOUS)
        c = ColumnSpec("x", ColumnKind.DISCRETE)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestSchema:
    def _schema(self) -> Schema:
        return Schema([
            ColumnSpec("time", ColumnKind.DISCRETE),
            ColumnSpec("temp", ColumnKind.CONTINUOUS),
            ColumnSpec("voltage", ColumnKind.CONTINUOUS),
        ])

    def test_names_preserve_order(self):
        assert self._schema().names == ("time", "temp", "voltage")

    def test_len_and_iter(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [s.name for s in schema] == ["time", "temp", "voltage"]

    def test_contains(self):
        schema = self._schema()
        assert "temp" in schema
        assert "missing" not in schema

    def test_getitem(self):
        assert self._schema()["temp"].is_continuous

    def test_getitem_unknown_raises_with_candidates(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self._schema()["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([ColumnSpec("x", ColumnKind.CONTINUOUS),
                    ColumnSpec("x", ColumnKind.DISCRETE)])

    def test_non_spec_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["not-a-spec"])

    def test_kind_of(self):
        assert self._schema().kind_of("time") is ColumnKind.DISCRETE

    def test_continuous_and_discrete_names(self):
        schema = self._schema()
        assert schema.continuous_names() == ("temp", "voltage")
        assert schema.discrete_names() == ("time",)

    def test_project_reorders(self):
        projected = self._schema().project(["voltage", "time"])
        assert projected.names == ("voltage", "time")

    def test_project_unknown_raises(self):
        with pytest.raises(SchemaError):
            self._schema().project(["nope"])

    def test_drop(self):
        dropped = self._schema().drop(["temp"])
        assert dropped.names == ("time", "voltage")

    def test_drop_unknown_raises(self):
        with pytest.raises(SchemaError):
            self._schema().drop(["nope"])

    def test_equality_and_hash(self):
        assert self._schema() == self._schema()
        assert hash(self._schema()) == hash(self._schema())
        assert self._schema() != self._schema().drop(["temp"])
