"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures.  The
series/rows it would plot are written to ``benchmarks/reports/<id>.txt``
(and echoed to stdout) so the shapes are inspectable after a
``pytest benchmarks/ --benchmark-only`` run; EXPERIMENTS.md records the
paper-vs-measured comparison.

Dataset sizes are scaled down from the paper's (laptop-scale budgets);
set ``SCORPION_BENCH_SCALE=paper`` for full-size datasets and NAIVE
budgets.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import make_synth

REPORTS_DIR = Path(__file__).parent / "reports"

#: Machine-readable scoring-performance ledger at the repo root; each
#: scoring bench merges its section so the scalar/batch/indexed rows-per
#: -second trajectory is tracked across PRs.
BENCH_JSON = Path(__file__).parent.parent / "BENCH_scorer.json"

#: "quick" (default) or "paper".
SCALE = os.environ.get("SCORPION_BENCH_SCALE", "quick")

#: Tuples per SYNTH group (paper: 2000).
SYNTH_GROUP_SIZE = 2000 if SCALE == "paper" else 500
#: NAIVE wall-clock budget in seconds (paper: 40 minutes).
NAIVE_BUDGET = 240.0 if SCALE == "paper" else 5.0
#: The c sweep most figures share (paper sweeps [0, 0.5]).
C_SWEEP = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)
C_SWEEP_SHORT = (0.05, 0.1, 0.3)


def emit_report(name: str, text: str) -> None:
    """Persist a figure/table reproduction and echo it."""
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


def emit_bench_json(section: str, payload: dict) -> None:
    """Merge one bench's machine-readable results into
    ``BENCH_scorer.json`` (read-modify-write so the scoring benches can
    run in any order or alone).  The scale is recorded per section:
    sections persist across runs, so a file-level label would mislabel
    sections written at a different ``SCORPION_BENCH_SCALE``."""
    data: dict = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = dict(payload, scale=SCALE)
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"[bench json section {section!r} written to {BENCH_JSON}]")


def synth_dataset(n_dims: int, difficulty: str, seed: int = 0,
                  tuples_per_group: int | None = None):
    return make_synth(n_dims, difficulty,
                      tuples_per_group=tuples_per_group or SYNTH_GROUP_SIZE,
                      seed=seed)


@pytest.fixture(scope="session")
def synth_2d_hard():
    return synth_dataset(2, "hard")


@pytest.fixture(scope="session")
def synth_2d_easy():
    return synth_dataset(2, "easy")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments themselves are the unit of interest (they sweep many
    configurations internally), so one round is both representative and
    affordable.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
