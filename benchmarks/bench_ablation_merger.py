"""Ablation: the Section 6.3 Merger optimizations.

Two independent switches on DT-generated candidates:

* **top-quartile expansion** (vs expanding every candidate);
* **cached-state approximation** (vs exact scoring of every candidate
  merge).

We measure merge wall-clock, Scorer work avoided, and the exact
influence of the final predicate — the optimizations must buy speed
without giving up (much) quality.
"""

import time

from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.merger import Merger, MergerParams
from repro.eval import format_table

from benchmarks.conftest import emit_report, run_once, synth_dataset

CONFIGS = [
    ("basic (all, exact)", MergerParams(expand_fraction=1.0,
                                        use_approximation=False)),
    ("quartile only", MergerParams(expand_fraction=0.25,
                                   use_approximation=False)),
    ("approximation only", MergerParams(expand_fraction=1.0,
                                        use_approximation=True)),
    ("quartile + approx", MergerParams(expand_fraction=0.25,
                                       use_approximation=True)),
]


def _experiment():
    dataset = synth_dataset(3, "easy")
    problem = dataset.scorpion_query(c=0.1)
    scorer = InfluenceScorer(problem)
    candidates = DTPartitioner(seed=0).run(problem, scorer).candidates
    rows = []
    results = {}
    for label, params in CONFIGS:
        merger = Merger(scorer, problem.domain, params=params)
        started = time.perf_counter()
        merged = merger.run(list(candidates))
        elapsed = time.perf_counter() - started
        best = merged[0].influence if merged else float("nan")
        rows.append([label, round(elapsed, 3), merger.report.n_expanded,
                     merger.report.n_scorer_calls_saved, round(best, 4)])
        results[label] = (elapsed, best)
    return rows, results


def test_merger_optimizations(benchmark):
    rows, results = run_once(benchmark, _experiment)
    emit_report("ablation_merger", format_table(
        "Ablation — Merger optimizations (§6.3) on DT candidates, 3D Easy",
        ["configuration", "seconds", "expanded", "scorer calls saved",
         "best influence"], rows))
    basic_time, basic_influence = results["basic (all, exact)"]
    fast_time, fast_influence = results["quartile + approx"]
    assert fast_time <= basic_time
    # Quality within 10% of the exhaustive merger.
    assert fast_influence >= basic_influence * 0.9
