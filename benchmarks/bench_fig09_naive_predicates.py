"""Figure 9: the optimal NAIVE predicate's footprint as c varies.

The paper shows five scatter plots of SYNTH-2D-Hard with the NAIVE
predicate overlaid: c = 0 encloses the whole outer cube (many incidental
normal points included), and increasing c shrinks the box toward the
high-valued inner cube.  We reproduce the row of boxes and check the
monotone-shrinkage shape: matched row count does not increase with c.
"""

from repro.eval import format_table, score_predicate
from repro.eval.runner import run_algorithm

from benchmarks.conftest import NAIVE_BUDGET, emit_report, run_once

# The paper plots c up to 0.5; we extend to 1.0 because the exact c at
# which the optimum shifts from the outer to the inner cube depends on
# the (unpublished) value-distribution details — on our generator it
# falls near c ≈ 0.7 (EXPERIMENTS.md, Figure 9 entry).
C_VALUES = (0.0, 0.05, 0.1, 0.2, 0.5, 0.75, 1.0)


def _experiment(dataset):
    rows = []
    matched_counts = []
    for c in C_VALUES:
        problem = dataset.scorpion_query(c=c)
        record = run_algorithm("naive", problem, time_budget=NAIVE_BUDGET,
                               n_bins=15)
        matched = int(record.predicate.mask(dataset.table).sum())
        matched_counts.append(matched)
        inner = score_predicate(record.predicate, dataset.table,
                                dataset.truth_inner(),
                                dataset.outlier_row_indices())
        outer = score_predicate(record.predicate, dataset.table,
                                dataset.truth_outer(),
                                dataset.outlier_row_indices())
        rows.append([c, str(record.predicate), matched,
                     round(outer.recall, 3), round(inner.recall, 3)])
    return rows, matched_counts


def test_fig09_naive_predicate_footprint(benchmark, synth_2d_hard):
    rows, matched = run_once(benchmark, lambda: _experiment(synth_2d_hard))
    emit_report("fig09_naive_predicates", format_table(
        "Figure 9 — optimal NAIVE predicate vs c (SYNTH-2D-Hard)",
        ["c", "predicate", "rows matched", "outer recall", "inner recall"],
        rows))
    # Shape: the footprint shrinks (weakly) as c grows, and the top of
    # the sweep is far more selective than c = 0 (the optimum shifts
    # from the outer cube to the inner cube).
    assert all(a >= b for a, b in zip(matched, matched[1:])), matched
    assert matched[0] > 1.5 * matched[-1]
