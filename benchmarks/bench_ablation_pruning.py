"""Ablation: MC's anti-monotonicity pruning (Section 6.2).

Pruning discards predicates whose refinement bound cannot reach the
incumbent.  Disabling it (bound treated as always passing) forces MC to
carry every supported cell through intersections and merging.

The bound covers *refinements* of a cell, not merges it might later
join, so pruning can cost a little final influence in exchange for the
order-of-magnitude evaluation savings — exactly the "comparable quality,
orders of magnitude less time" trade the paper reports.  We assert big
savings and bounded quality loss.
"""

import time

from repro.core.influence import InfluenceScorer
from repro.core.mc import MCPartitioner
from repro.eval import format_table

from benchmarks.conftest import emit_report, run_once, synth_dataset


class _UnprunedMC(MCPartitioner):
    """MC with the pruning rule disabled (cap retained as a safety net)."""

    def _prune(self, cells, index, best_influence):
        if len(cells) > self.max_predicates_per_level:
            cells = sorted(cells, key=index.refinement_bound,
                           reverse=True)[: self.max_predicates_per_level]
        return list(cells)


def _experiment():
    dataset = synth_dataset(3, "easy")
    problem = dataset.scorpion_query(c=0.4)
    rows = []
    outcomes = {}
    for label, cls in (("pruning", MCPartitioner), ("no pruning", _UnprunedMC)):
        scorer = InfluenceScorer(problem)
        started = time.perf_counter()
        result = cls(n_bins=15).run(problem, scorer)
        elapsed = time.perf_counter() - started
        best = result.best.influence if result.best else float("nan")
        rows.append([label, round(elapsed, 2), scorer.stats.mask_scores,
                     round(best, 4)])
        outcomes[label] = (elapsed, scorer.stats.mask_scores, best)
    return rows, outcomes


def test_mc_pruning(benchmark):
    rows, outcomes = run_once(benchmark, _experiment)
    emit_report("ablation_pruning", format_table(
        "Ablation — MC anti-monotone pruning (§6.2), 3D Easy, c = 0.4",
        ["configuration", "seconds", "influence evaluations",
         "best influence"], rows))
    pruned_time, pruned_evals, pruned_best = outcomes["pruning"]
    full_time, full_evals, full_best = outcomes["no pruning"]
    # Pruning saves the bulk of the influence evaluations...
    assert pruned_evals <= full_evals / 2
    # ...while staying in the same quality regime as the full search.
    assert pruned_best >= full_best * 0.8
