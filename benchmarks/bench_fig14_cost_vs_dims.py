"""Figure 14: runtime (log scale in the paper) as dimensionality grows,
Easy datasets, c sweep.

The paper's headline: DT and MC run up to two orders of magnitude
faster than NAIVE (whose curve reports time-to-converge within its 40
minute budget).  With NAIVE given a scaled-down budget here, the shape
to preserve is the *ordering*: DT and MC each finish well under NAIVE's
convergence time at every dimensionality, and MC is the cheapest.
"""

from repro.core.naive import NaivePartitioner
from repro.eval import format_table
from repro.eval.runner import run_algorithm

from benchmarks.conftest import NAIVE_BUDGET, emit_report, run_once, synth_dataset

DIMS = (2, 3, 4)
C = 0.1


def _naive_convergence_time(problem) -> tuple[float, float]:
    """Earliest time NAIVE reached the influence it ends the budget with
    (the paper's 'earliest time that NAIVE converges')."""
    result = NaivePartitioner(time_budget=NAIVE_BUDGET, n_bins=15).run(problem)
    if not result.convergence:
        return result.elapsed, float("nan")
    final = result.convergence[-1]
    return final.elapsed, final.influence


def _experiment():
    rows = []
    times: dict[int, dict[str, float]] = {}
    for n_dims in DIMS:
        dataset = synth_dataset(n_dims, "easy")
        problem = dataset.scorpion_query(c=C)
        times[n_dims] = {}
        naive_time, _ = _naive_convergence_time(problem)
        times[n_dims]["naive"] = naive_time
        rows.append([f"{n_dims}D", "naive", round(naive_time, 2)])
        for name in ("dt", "mc"):
            record = run_algorithm(name, problem)
            times[n_dims][name] = record.runtime
            rows.append([f"{n_dims}D", name, round(record.runtime, 2)])
    return rows, times


def test_fig14_cost_vs_dimensionality(benchmark):
    rows, times = run_once(benchmark, _experiment)
    emit_report("fig14_cost_vs_dims", format_table(
        f"Figure 14 — runtime (s) vs dimensionality (Easy, c = {C})",
        ["dims", "algorithm", "seconds"], rows))
    for n_dims in DIMS:
        assert times[n_dims]["dt"] <= times[n_dims]["naive"] * 1.5
        assert times[n_dims]["mc"] <= times[n_dims]["naive"] * 1.5
    # MC's pruning makes it the cheapest algorithm on SUM workloads.
    assert times[4]["mc"] <= times[4]["dt"] * 2.0
