"""Section 8.4, INTEL workloads: the real-world sensor-failure analyses.

Paper findings on the real trace:

* workload 1 → ``sensorid = 15`` across c, refined by a voltage band
  (``voltage ∈ [2.307, 2.33]``) near c = 1;
* workload 2 → ``sensorid = 18``, refined by ``light ∈ [283, 354]`` at
  c = 1.

On the simulated trace we assert the essential shape: the failing sensor
is identified at every c (F-score vs the failure rows near 1), and "all
algorithms completed within a few seconds".
"""

from repro.core.scorpion import Scorpion
from repro.datasets import make_intel
from repro.eval import format_table, score_predicate

from benchmarks.conftest import SCALE, emit_report, run_once

C_VALUES = (1.0, 0.5, 0.1)
READINGS = 8 if SCALE == "paper" else 4


def _experiment(workload: int):
    dataset = make_intel(workload, readings_per_sensor_hour=READINGS)
    scorpion = Scorpion(algorithm="dt", use_cache=True)
    rows = []
    f_scores = []
    elapsed = []
    for c in C_VALUES:
        problem = dataset.scorpion_query(c=c)
        result = scorpion.explain(problem)
        best = result.best
        stats = score_predicate(best.predicate, dataset.table,
                                dataset.failure_mask,
                                dataset.outlier_row_indices())
        rows.append([c, str(best.predicate), round(stats.f_score, 3),
                     round(result.elapsed, 2)])
        f_scores.append(stats.f_score)
        elapsed.append(result.elapsed)
    return dataset, rows, f_scores, elapsed


def _assert_sensor_found(rows, sensor_id: int):
    for row in rows:
        assert f"sensorid = {sensor_id}" in row[1] or \
            f"sensorid in" in row[1] and str(sensor_id) in row[1], row[1]


def test_intel_workload1(benchmark):
    dataset, rows, f_scores, elapsed = run_once(benchmark, lambda: _experiment(1))
    emit_report("real_intel_w1", format_table(
        f"Section 8.4 — INTEL workload 1 ({len(dataset.table):,} rows, "
        f"{len(dataset.outlier_keys)} outliers / {len(dataset.holdout_keys)} "
        "hold-outs)",
        ["c", "predicate", "F vs failure rows", "seconds"], rows))
    _assert_sensor_found(rows, 15)
    assert min(f_scores) > 0.9
    assert max(elapsed) < 30.0


def test_intel_workload2(benchmark):
    dataset, rows, f_scores, elapsed = run_once(benchmark, lambda: _experiment(2))
    emit_report("real_intel_w2", format_table(
        f"Section 8.4 — INTEL workload 2 ({len(dataset.table):,} rows, "
        f"{len(dataset.outlier_keys)} outliers / {len(dataset.holdout_keys)} "
        "hold-outs)",
        ["c", "predicate", "F vs failure rows", "seconds"], rows))
    _assert_sensor_found(rows, 18)
    assert min(f_scores) > 0.9
    assert max(elapsed) < 60.0
