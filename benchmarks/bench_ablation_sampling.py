"""Ablation: DT's Section 6.1.2 sampling.

Sampling cuts the split-search cost on large groups by working over an
influence-stratified sample instead of all tuples.  We run DT with and
without it on a larger SYNTH instance and compare partitioning time and
final quality (exact influence of the best explanation).
"""

import time

from repro.core.dt import DTPartitioner
from repro.core.influence import InfluenceScorer
from repro.core.merger import Merger
from repro.eval import format_table

from benchmarks.conftest import SCALE, emit_report, run_once, synth_dataset

GROUP_SIZE = 10_000 if SCALE == "paper" else 3_000


def _run(problem, sampling: bool):
    scorer = InfluenceScorer(problem)
    partitioner = DTPartitioner(sampling=sampling, seed=0)
    started = time.perf_counter()
    result = partitioner.run(problem, scorer)
    partition_time = time.perf_counter() - started
    merged = Merger(scorer, problem.domain).run(result.candidates)
    best = merged[0].influence if merged else float("nan")
    return partition_time, len(result.candidates), best


def _experiment():
    dataset = synth_dataset(2, "easy", tuples_per_group=GROUP_SIZE)
    problem = dataset.scorpion_query(c=0.1)
    rows = []
    outcomes = {}
    for label, sampling in (("no sampling", False), ("sampling", True)):
        partition_time, n_candidates, best = _run(problem, sampling)
        rows.append([label, round(partition_time, 2), n_candidates,
                     round(best, 4)])
        outcomes[label] = (n_candidates, best)
    return rows, outcomes


def test_dt_sampling(benchmark):
    rows, outcomes = run_once(benchmark, _experiment)
    emit_report("ablation_sampling", format_table(
        f"Ablation — DT sampling (§6.1.2), {GROUP_SIZE * 10:,} tuples",
        ["configuration", "partition seconds", "candidates",
         "best influence"], rows))
    full_candidates, full_best = outcomes["no sampling"]
    sampled_candidates, sampled_best = outcomes["sampling"]
    # Deterministic effects of sampling: a smaller split search (fewer or
    # equal partitions) at comparable quality.  Wall-clock at this scale
    # is dominated by noise, so it is reported but not asserted.
    assert sampled_candidates <= full_candidates
    assert sampled_best >= full_best * 0.8
