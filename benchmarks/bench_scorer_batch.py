"""Scalar vs batched influence scoring (the batch-engine tentpole).

``InfluenceScorer.score_batch`` evaluates a predicate set as one mask
matrix and one scatter-add pass over the labeled rows instead of a
Scorer round-trip per predicate.  This bench scores the same predicate
batches both ways across batch sizes and group sizes; the two result
vectors must match exactly (the scalar/batch equivalence contract).

Expected shape: batching pays off most where per-predicate Python
overhead dominates — small-to-medium groups (the quick-scale regime all
other benches run in) show 2–4×, while very large groups are bound by
the same numpy data movement on both paths and converge to parity.
Index routing is disabled here so the mask-matrix kernel is measured in
isolation; ``bench_prefix_index.py`` covers the index fast path and the
combined BENCH_scorer.json ledger holds all three rates.
"""

import os
import time

import numpy as np

from repro.core.influence import InfluenceScorer
from repro.eval import format_table
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate

from benchmarks.conftest import (
    emit_bench_json,
    emit_report,
    run_once,
    synth_dataset,
)

BATCH_SIZES = (64, 512, 2048)
GROUP_SIZES = (200, 500, 2000)
#: Group sizes where the batched path must win outright at the larger
#: batch sizes (at 2000 tuples/group both paths are data-bound).
ASSERT_GROUP_SIZES = (200, 500)


def _predicate_batch(n: int):
    """Mixed 1–2 clause predicates over the SYNTH A_rest attributes."""
    rng = np.random.default_rng(7)
    batch = []
    for i in range(n):
        clauses = []
        lo = rng.uniform(0, 80)
        clauses.append(RangeClause("a1", lo, lo + rng.uniform(5, 25)))
        if i % 3 == 0:
            lo = rng.uniform(0, 80)
            clauses.append(RangeClause("a2", lo, lo + rng.uniform(5, 25)))
        batch.append(Predicate(clauses))
    return batch


def _experiment():
    predicates = _predicate_batch(max(BATCH_SIZES))
    rows = []
    speedups = {}
    json_rows = []
    for group_size in GROUP_SIZES:
        dataset = synth_dataset(2, "easy", tuples_per_group=group_size)
        problem = dataset.scorpion_query(c=0.5)
        for batch_size in BATCH_SIZES:
            batch = predicates[:batch_size]
            scalar_scorer = InfluenceScorer(problem, cache_scores=False)
            started = time.perf_counter()
            scalar = np.asarray([scalar_scorer.score(p) for p in batch])
            scalar_time = time.perf_counter() - started

            # Index routing off: this bench isolates the mask-matrix
            # kernel against the scalar loop; bench_prefix_index.py
            # measures the index fast path against both.
            batch_scorer = InfluenceScorer(problem, cache_scores=False,
                                           use_index=False)
            started = time.perf_counter()
            batched = batch_scorer.score_batch(batch)
            batch_time = time.perf_counter() - started

            np.testing.assert_array_equal(batched, scalar)
            speedup = scalar_time / batch_time if batch_time > 0 else float("inf")
            speedups[(group_size, batch_size)] = speedup
            rows.append([
                group_size,
                batch_size,
                round(scalar_time * 1e3, 2),
                round(batch_time * 1e3, 2),
                round(batch_scorer.stats.batch_throughput, 0),
                round(speedup, 2),
            ])
            json_rows.append({
                "tuples_per_group": group_size,
                "batch_size": batch_size,
                "scalar_preds_per_s": round(batch_size / scalar_time, 1)
                if scalar_time > 0 else None,
                "batch_preds_per_s": round(batch_size / batch_time, 1)
                if batch_time > 0 else None,
                "speedup": round(speedup, 3),
            })
    return rows, speedups, json_rows


def test_batched_scoring_beats_scalar(benchmark):
    rows, speedups, json_rows = run_once(benchmark, _experiment)
    emit_report("scorer_batch", format_table(
        "Batched vs scalar influence scoring (incremental path), 10 groups",
        ["tuples/group", "batch size", "scalar ms", "batched ms",
         "batched preds/s", "speedup"], rows))
    emit_bench_json("scorer_batch", {
        "description": "mixed 1-2 clause predicates, scalar vs batched "
                       "mask-matrix scoring (predicates/second)",
        "rows": json_rows,
    })
    # Identical scores come for free (asserted inside the experiment);
    # where per-predicate overhead dominates, the batched pass must win.
    # Single-shot wall-clock comparisons are meaningless on loaded shared
    # runners — CI smoke runs export SCORPION_BENCH_PERF_ASSERT=0 to keep
    # the equality check while skipping the timing assertion.
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    for group_size in ASSERT_GROUP_SIZES:
        for batch_size in BATCH_SIZES[1:]:
            assert speedups[(group_size, batch_size)] > 1.0, (
                f"batched scoring slower than scalar at "
                f"{group_size} tuples/group, batch size {batch_size}")
