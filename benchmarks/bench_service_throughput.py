"""Resident-service throughput: warm content-keyed cache vs
rebuild-per-call (the PR 7 acceptance experiment).

A rebuild-per-call client pays the full problem build on every request:
group-by execution and provenance over the whole table, context and
evaluator construction, index views, and (with workers) pool startup —
all pure function of the problem, not of the ``c`` knob the requests
vary.  A resident :class:`~repro.service.ExplainService` pays them once.

Legs:

* **warm vs cold (equality + throughput)** — the service runs with
  ``use_cache=False`` so every request repartitions and remerges
  deterministically; each warm result is then asserted bit-for-bit
  equal to its rebuild-per-call twin (explanations, influences, matched
  rows, updated outputs), and warm explains/sec must be ≥ 3× cold at
  ``workers=1``.  The speedup is *pure* artifact reuse — no DT-cache
  shortcuts are allowed to blur the equality contract.
* **full resident** — the realistic configuration (DT cache on), where
  warm requests additionally reuse partitions and warm-start merges;
  throughput only reported (warm-started merges are "at least as
  good", not bit-identical — see ``tests/test_cache.py``).
* **concurrent asyncio** — the same request mix through
  :meth:`~repro.service.ExplainService.explain_async` under
  ``asyncio.gather``, asserting one miss, N−1 hits, and result
  equality with the sequential leg.

Timing assertions are skipped when ``SCORPION_BENCH_PERF_ASSERT=0``
(CI smoke runs keep the equality checks).
"""

import asyncio
import os
import time

import numpy as np

from repro.aggregates import Sum
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.eval import format_table
from repro.query.groupby import GroupByQuery
from repro.service import ExplainService
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

from benchmarks.conftest import SCALE, emit_bench_json, emit_report, run_once

#: The acceptance bar: warm explains/sec ≥ this multiple of cold.
MIN_WARM_SPEEDUP = 3.0

N_GROUPS = 200 if SCALE == "paper" else 100
N_PER_GROUP = 1000 if SCALE == "paper" else 500
C_REQUESTS = (0.5, 0.4, 0.3, 0.2, 0.1, 0.0) * (4 if SCALE == "paper" else 2)


def _request_table() -> Table:
    """A SUM workload where the problem build dominates: many unlabeled
    groups (the group-by and provenance walk all of them) but only four
    labeled ones (partitioning and merging stay cheap)."""
    rng = np.random.default_rng(7)
    n = N_GROUPS * N_PER_GROUP
    groups = np.repeat([f"g{i:03d}" for i in range(N_GROUPS)], N_PER_GROUP)
    a1 = rng.uniform(0, 100, n)
    a2 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA", "MA", "OR"], n)
    value = np.ones(n)
    hot = (np.isin(groups, ["g000", "g001"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("a2", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    return Table.from_columns(schema, {
        "g": groups, "a1": a1, "a2": a2, "state": state, "value": value,
    })


OUTLIERS = ["g000", "g001"]
HOLDOUTS = ["g002", "g003"]


def _explanation_image(result):
    """Everything an explanation asserts bit-for-bit."""
    return [(e.predicate, e.influence, e.n_matched,
             e.updated_outliers, e.updated_holdouts)
            for e in result.explanations]


def _cold_sweep(table, query, use_cache: bool):
    """Rebuild-per-call baseline: fresh problem + fresh Scorpion per
    request (a shared Scorpion would smuggle in the DT cache)."""
    results, started = [], time.perf_counter()
    for c in C_REQUESTS:
        problem = ScorpionQuery(table, query, OUTLIERS, HOLDOUTS, +1.0, c=c)
        results.append(Scorpion(algorithm="dt", use_cache=use_cache,
                                workers=1).explain(problem))
    return results, time.perf_counter() - started


def _warm_sweep(service, table, query):
    results, started = [], time.perf_counter()
    for c in C_REQUESTS:
        results.append(service.explain_request(
            table, query, OUTLIERS, HOLDOUTS, +1.0, c=c))
    return results, time.perf_counter() - started


def _experiment():
    table = _request_table()
    query = GroupByQuery("g", Sum(), "value")
    rows = {}

    # Leg 1: equality-grade (no DT cache anywhere).
    cold_results, cold_s = _cold_sweep(table, query, use_cache=False)
    with ExplainService(algorithm="dt", use_cache=False,
                        workers=1) as service:
        service.explain_request(table, query, OUTLIERS, HOLDOUTS, +1.0,
                                c=C_REQUESTS[0])  # prime: the one miss
        warm_results, warm_s = _warm_sweep(service, table, query)
        warm_stats = service.stats()
    for cold, warm in zip(cold_results, warm_results):
        assert _explanation_image(cold) == _explanation_image(warm)
        assert warm.scorer_stats["service_cache_hit"]
    rows["equality"] = (cold_s, warm_s)

    # Leg 2: full resident configuration (DT cache on in both roles).
    cold_results, cold_full_s = _cold_sweep(table, query, use_cache=True)
    with ExplainService(algorithm="dt", workers=1) as service:
        service.explain_request(table, query, OUTLIERS, HOLDOUTS, +1.0,
                                c=C_REQUESTS[0])
        warm_results, warm_full_s = _warm_sweep(service, table, query)
    for cold, warm in zip(cold_results, warm_results):
        assert warm.best.influence >= cold.best.influence - 1e-9
    rows["resident"] = (cold_full_s, warm_full_s)

    # Leg 3: concurrent requests through the asyncio front end.
    with ExplainService(algorithm="dt", use_cache=False,
                        workers=1) as service:
        async def fanout():
            return await asyncio.gather(*[
                service.explain_async(
                    ScorpionQuery(table, query, OUTLIERS, HOLDOUTS, +1.0,
                                  c=0.3))
                for _ in range(4)])
        started = time.perf_counter()
        concurrent = asyncio.run(fanout())
        concurrent_s = time.perf_counter() - started
        stats = service.stats()
    assert stats["service_misses"] == 1
    assert stats["service_hits"] == 3
    reference = Scorpion(algorithm="dt", use_cache=False, workers=1).explain(
        ScorpionQuery(table, query, OUTLIERS, HOLDOUTS, +1.0, c=0.3))
    for result in concurrent:
        assert _explanation_image(result) == _explanation_image(reference)

    return rows, warm_stats, concurrent_s


def test_service_throughput(benchmark):
    rows, warm_stats, concurrent_s = run_once(benchmark, _experiment)
    n = len(C_REQUESTS)
    table_rows, json_rows = [], {}
    for leg, (cold_s, warm_s) in rows.items():
        cold_rps, warm_rps = n / cold_s, n / warm_s
        table_rows.append([leg, round(cold_rps, 2), round(warm_rps, 2),
                           round(warm_rps / cold_rps, 2)])
        json_rows[leg] = {
            "requests": n,
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "cold_explains_per_second": round(cold_rps, 3),
            "warm_explains_per_second": round(warm_rps, 3),
            "speedup": round(warm_rps / cold_rps, 3),
        }
    emit_report("service_throughput", format_table(
        "Resident service — explains/sec, rebuild-per-call vs warm cache "
        "(workers=1; equality leg asserted bit-for-bit)",
        ["leg", "cold rps", "warm rps", "speedup"], table_rows))
    emit_bench_json("service_throughput", {
        "description": "ExplainService warm vs rebuild-per-call explain "
                       "throughput (equality leg: bit-for-bit asserted; "
                       "resident leg: DT cache on)",
        "legs": json_rows,
        "concurrent_seconds": round(concurrent_s, 4),
        "service_stats": warm_stats,
    })
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    cold_s, warm_s = rows["equality"]
    assert warm_s * MIN_WARM_SPEEDUP <= cold_s, (
        f"warm service throughput only {cold_s / warm_s:.2f}x the "
        f"rebuild-per-call baseline (need >= {MIN_WARM_SPEEDUP}x)")
