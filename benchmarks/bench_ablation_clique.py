"""Ablation: influence-driven MC versus density-only CLIQUE.

MC adapts CLIQUE from density to influence (Section 6.2).  This bench
shows why the adaptation matters: on SYNTH the outlier region is *not*
the densest region (normal tuples are spread uniformly and outnumber
outliers 3:1), so density-only clustering cannot find the explanation
while MC's influence objective can.
"""

from repro.clustering.clique import Clique
from repro.core.scorpion import Scorpion
from repro.eval import format_table
from repro.eval.metrics import score_predicate

from benchmarks.conftest import emit_report, run_once, synth_dataset


def _experiment():
    dataset = synth_dataset(2, "easy")
    outlier_rows = dataset.outlier_row_indices()
    truth = dataset.truth_outer()
    outlier_table = dataset.table.take(outlier_rows)

    # Density-only CLIQUE over the outlier groups' dimension attributes.
    clusters = Clique(density_threshold=0.02, n_bins=15).fit(
        outlier_table, list(dataset.config.dimension_names))
    best_cluster = max(
        (c for c in clusters if len(c.attributes) == dataset.config.n_dims),
        key=lambda c: len(c.support),
        default=None,
    )
    rows = []
    clique_f = 0.0
    if best_cluster is not None:
        stats = score_predicate(best_cluster.predicate, dataset.table, truth,
                                outlier_rows)
        clique_f = stats.f_score
        rows.append(["clique (density)", str(best_cluster.predicate),
                     round(stats.f_score, 3)])
    else:
        rows.append(["clique (density)", "(no dense 2-d subspace)", 0.0])

    # Influence-driven MC on the same data.
    problem = dataset.scorpion_query(c=0.1)
    result = Scorpion(algorithm="mc").explain(problem)
    stats = score_predicate(result.best.predicate, dataset.table, truth,
                            outlier_rows)
    rows.append(["mc (influence)", str(result.best.predicate),
                 round(stats.f_score, 3)])
    return rows, clique_f, stats.f_score


def test_density_vs_influence(benchmark):
    rows, clique_f, mc_f = run_once(benchmark, _experiment)
    emit_report("ablation_clique", format_table(
        "Ablation — density-only CLIQUE vs influence-driven MC "
        "(SYNTH-2D-Easy, outer truth)",
        ["search objective", "best predicate", "F-score"], rows))
    assert mc_f > clique_f + 0.1, (
        "influence-driven search must beat density-only clustering here")
