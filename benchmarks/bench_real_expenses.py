"""Section 8.4, EXPENSE workload: Obama campaign media buys.

Paper findings (ground truth = tuples over $1.5M, F ≈ 0.6 for the best
predicate on the real file):

* c ∈ [0.2, 1]: a conjunction pinning the GMMB INC. media-buy filing —
  ``recipient_st = DC & recipient_nm = GMMB INC. & file_num = 800316 &
  disb_desc = MEDIA BUY`` (one attribute suffices to select the same
  tuples; our MC returns the minimal form);
* c < 0.1: the file_num clause drops and the predicate matches all
  GMMB payments.

Asserted shape: at high c the returned predicate selects exactly the
800316 media buys (F = 1 on the generated data, where the filing and the
truth set coincide); at low c it relaxes to a superset with full recall
and lower precision.
"""

from repro.core.scorpion import Scorpion
from repro.datasets import ExpensesConfig, generate_expenses
from repro.eval import format_table, score_predicate

from benchmarks.conftest import SCALE, emit_report, run_once

C_VALUES = (1.0, 0.5, 0.2, 0.05)


def _experiment():
    config = (ExpensesConfig(n_days=540, rows_per_day=200)
              if SCALE == "paper" else ExpensesConfig())
    dataset = generate_expenses(config)
    effective = dataset.effective_table()
    truth = dataset.effective_truth_mask()
    outlier_rows = dataset.outlier_row_indices()
    rows = []
    stats_by_c = {}
    for c in C_VALUES:
        problem = dataset.scorpion_query(c=c)
        result = Scorpion().explain(problem)
        best = result.best
        stats = score_predicate(best.predicate, effective, truth, outlier_rows)
        rows.append([c, result.algorithm, str(best.predicate),
                     round(stats.precision, 3), round(stats.recall, 3),
                     round(stats.f_score, 3), round(result.elapsed, 2)])
        stats_by_c[c] = (stats, str(best.predicate))
    return dataset, rows, stats_by_c


def test_expenses_workload(benchmark):
    dataset, rows, stats_by_c = run_once(benchmark, _experiment)
    emit_report("real_expenses", format_table(
        f"Section 8.4 — EXPENSE workload ({len(dataset.table):,} rows, "
        f"{len(dataset.outlier_keys)} outlier days / "
        f"{len(dataset.holdout_keys)} hold-outs; truth = tuples > $1.5M)",
        ["c", "algorithm", "predicate", "precision", "recall", "F", "seconds"],
        rows))
    high_stats, high_predicate = stats_by_c[1.0]
    low_stats, low_predicate = stats_by_c[0.05]
    # High c pins the expensive filing exactly.
    assert high_stats.f_score > 0.9
    assert "800316" in high_predicate or "GMMB" in high_predicate
    # Low c keeps recall but relaxes precision (coarser predicate).
    assert low_stats.recall >= high_stats.recall - 1e-9
    assert low_stats.precision <= high_stats.precision + 1e-9
