"""Sharded parallel scoring vs worker count (the parallel tentpole).

Scores one large predicate batch through ``InfluenceScorer.score_batch``
at increasing ``workers`` settings, on the two hot shard shapes:

* *mask kernel* — 2-clause range conjunctions (never index-eligible),
  so every shard is an ``evaluate_batch`` + scatter-add pass in a
  worker;
* *index routed* — single-clause ranges with the prefix-aggregate index
  prepared, so shards are binary-search/prefix lookups against the
  shared index views.

Influences and stats counters must be identical at every worker count
(the parallel equivalence contract; always asserted, including in CI
smoke runs).  Predicates/second is measured after a warm-up batch so
pool spin-up and shared-memory packing are reported separately
(``spinup_ms``) rather than folded into throughput.

The wall-clock expectation — the ISSUE 4 acceptance bar — is ≥ 2.5×
predicates/sec at 4 workers over serial on the mask-kernel shape at
2000 tuples/group.  That assertion only makes sense on a machine with
at least 4 CPUs, so it is additionally gated on ``os.cpu_count()``
(and, like every timing assertion, on ``SCORPION_BENCH_PERF_ASSERT``).
``SCORPION_BENCH_MAX_WORKERS`` caps the sweep — CI pins it to 2 so
shared runners are never oversubscribed.
"""

import os
import time

import numpy as np

from repro.core.influence import InfluenceScorer
from repro.eval import format_table
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate

from benchmarks.conftest import (
    SCALE,
    emit_bench_json,
    emit_report,
    run_once,
    synth_dataset,
)

TUPLES_PER_GROUP = 2000
BATCH_SIZE = 4096 if SCALE == "paper" else 1536
#: Shard size — small enough that every sweep point has ≥ 2 shards per
#: worker in flight (sharding never affects results).
BATCH_CHUNK = 128
WORKER_SWEEP = (1, 2, 4, 8) if SCALE == "paper" else (1, 2, 4)
#: Counters that must match across worker counts (timing and the
#: parallel-only shard counters excluded by design).
COMPARED_COUNTERS = (
    "predicate_scores", "mask_scores", "incremental_deltas",
    "full_recomputes", "batch_calls", "batch_predicates",
    "indexed_predicates", "masked_predicates", "index_builds",
)


def _worker_sweep() -> tuple[int, ...]:
    cap = int(os.environ.get("SCORPION_BENCH_MAX_WORKERS", "0") or 0)
    if cap > 0:
        return tuple(w for w in WORKER_SWEEP if w <= cap) or (1,)
    return WORKER_SWEEP


def _masked_batch(n: int) -> list[Predicate]:
    """2-clause conjunctions over a1/a2 — mask-kernel territory."""
    rng = np.random.default_rng(23)
    batch = []
    for i in range(n):
        lo1 = rng.uniform(0.0, 80.0)
        lo2 = rng.uniform(0.0, 80.0)
        batch.append(Predicate([
            RangeClause("a1", lo1, lo1 + rng.uniform(5.0, 40.0)),
            RangeClause("a2", lo2, lo2 + rng.uniform(5.0, 40.0),
                        include_hi=bool(i % 2)),
        ]))
    return batch


def _routed_batch(n: int) -> list[Predicate]:
    """Single-clause ranges over a1 — the index fast path's shape."""
    rng = np.random.default_rng(29)
    batch = []
    for i in range(n):
        lo = rng.uniform(0.0, 95.0)
        width = rng.uniform(2.0, 40.0) if i % 4 else rng.uniform(40.0, 100.0)
        batch.append(Predicate([
            RangeClause("a1", lo, lo + width, include_hi=bool(i % 2))]))
    return batch


def _run_config(problem, batch, workers: int, prepare: tuple[str, ...]):
    """One (shape, workers) measurement: spin-up, timed batch, counters."""
    scorer = InfluenceScorer(problem, cache_scores=False, workers=workers,
                             batch_chunk=BATCH_CHUNK)
    try:
        if prepare:
            scorer.prepare_index(prepare)
        started = time.perf_counter()
        scorer.score_batch(batch[:2 * BATCH_CHUNK])  # spins the pool
        spinup = time.perf_counter() - started
        scorer.reset_stats()
        started = time.perf_counter()
        values = scorer.score_batch(batch)
        elapsed = time.perf_counter() - started
        counters = {name: getattr(scorer.stats, name)
                    for name in COMPARED_COUNTERS}
        if workers > 1:
            assert scorer.stats.parallel_shards > 0, \
                "parallel run never reached the worker pool"
        return values, elapsed, spinup, counters
    finally:
        scorer.close()


def _experiment():
    dataset = synth_dataset(2, "easy", tuples_per_group=TUPLES_PER_GROUP)
    problem = dataset.scorpion_query(c=0.5)
    sweep = _worker_sweep()
    rows, json_rows = [], []
    speedups: dict[tuple[str, int], float] = {}
    for shape, batch, prepare in (
            ("mask-kernel", _masked_batch(BATCH_SIZE), ()),
            ("index-routed", _routed_batch(BATCH_SIZE), ("a1",))):
        baseline_values = None
        baseline_counters = None
        baseline_time = None
        for workers in sweep:
            values, elapsed, spinup, counters = _run_config(
                problem, batch, workers, prepare)
            if baseline_values is None:
                baseline_values = values
                baseline_counters = counters
                baseline_time = elapsed
            else:
                # The equivalence contract — asserted even in smoke runs.
                np.testing.assert_array_equal(values, baseline_values)
                assert counters == baseline_counters, (
                    f"{shape}: workers={workers} counters diverged: "
                    f"{counters} vs {baseline_counters}")
            speedup = baseline_time / elapsed if elapsed > 0 else float("inf")
            speedups[(shape, workers)] = speedup
            rows.append([
                shape, workers, len(batch),
                round(elapsed * 1e3, 1),
                round(len(batch) / elapsed, 1) if elapsed > 0 else None,
                round(speedup, 2),
                round(spinup * 1e3, 1),
            ])
            json_rows.append({
                "shape": shape,
                "tuples_per_group": TUPLES_PER_GROUP,
                "batch_size": len(batch),
                "batch_chunk": BATCH_CHUNK,
                "workers": workers,
                "preds_per_s": round(len(batch) / elapsed, 1)
                if elapsed > 0 else None,
                "speedup_vs_serial": round(speedup, 3),
                "spinup_ms": round(spinup * 1e3, 1),
                "cpu_count": os.cpu_count(),
            })
    return rows, json_rows, speedups


def test_parallel_scaling(benchmark):
    rows, json_rows, speedups = run_once(benchmark, _experiment)
    emit_report("parallel_scaling", format_table(
        "Sharded parallel scoring vs worker count "
        f"(batch {BATCH_SIZE}, chunk {BATCH_CHUNK}, "
        f"{TUPLES_PER_GROUP} tuples/group, {os.cpu_count()} CPUs)",
        ["shape", "workers", "batch", "batch ms", "preds/s",
         "speedup", "spinup ms"], rows))
    emit_bench_json("parallel_scaling", {
        "description": "score_batch sharded over worker processes: "
                       "predicates/second vs workers on mask-kernel and "
                       "index-routed shapes (serial equality and counter "
                       "parity asserted)",
        "rows": json_rows,
    })
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    cpus = os.cpu_count() or 1
    target = ("mask-kernel", 4)
    if cpus >= 4 and target in speedups:
        assert speedups[target] >= 2.5, (
            f"mask-kernel speedup at 4 workers is {speedups[target]:.2f}x "
            f"(< 2.5x) on a {cpus}-CPU machine")
    else:
        print(f"[parallel-scaling perf assertion skipped: "
              f"{cpus} CPU(s), sweep {_worker_sweep()}]")
