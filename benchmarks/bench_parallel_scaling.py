"""Sharded parallel scoring vs worker count (the parallel tentpole).

Scores one large predicate batch through ``InfluenceScorer.score_batch``
at increasing ``workers`` settings, on the three hot shard shapes:

* *mask kernel* — 2-clause range conjunctions with the index tiers
  priced out (``force_mask_model``), so every shard is an
  ``evaluate_batch`` + scatter-add pass in a worker;
* *index routed* — single-clause ranges with the prefix-aggregate index
  prepared and the mask kernel priced out (``force_index_model``), so
  shards are binary-search/prefix lookups against the shared index
  views;
* *group sharded* — a batch far smaller than ``workers × batch_chunk``
  over a many-group problem, so the predicate axis alone cannot keep
  the pool busy and the cost model tiles the **group axis** instead:
  shards become (predicate-chunk × group-range) tiles whose per-group
  partials the parent reassembles.

Per shape the cost model is pinned, so the routing — and therefore the
work a shard does — is identical on every machine; what varies with
``workers`` is only the sharding.  Influences and stats counters
(routing and cost decisions included) must be identical at every worker
count (the parallel equivalence contract; always asserted, including in
CI smoke runs), and the group-sharded shape must actually produce group
tiles at ``workers >= 2``.  Predicates/second is measured after a
warm-up batch so pool spin-up and shared-memory packing are reported
separately (``spinup_ms``) rather than folded into throughput.

The wall-clock expectation — the ISSUE 4 acceptance bar — is ≥ 2.5×
predicates/sec at 4 workers over serial on the mask-kernel shape at
2000 tuples/group.  That assertion only makes sense on a machine with
at least 4 CPUs, so it is additionally gated on ``os.cpu_count()``
(and, like every timing assertion, on ``SCORPION_BENCH_PERF_ASSERT``).
``SCORPION_BENCH_MAX_WORKERS`` caps the sweep — CI pins it to 2 so
shared runners are never oversubscribed.
"""

import os
import time

import numpy as np

from repro.aggregates import Sum
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.eval import format_table
from repro.index import force_index_model, force_mask_model
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

from benchmarks.conftest import (
    SCALE,
    emit_bench_json,
    emit_report,
    run_once,
    synth_dataset,
)

TUPLES_PER_GROUP = 2000
BATCH_SIZE = 4096 if SCALE == "paper" else 1536
#: Shard size — small enough that every sweep point has ≥ 2 shards per
#: worker in flight (sharding never affects results).
BATCH_CHUNK = 128
WORKER_SWEEP = (1, 2, 4, 8) if SCALE == "paper" else (1, 2, 4)
#: The group-sharded shape: far fewer predicates than
#: ``workers × BATCH_CHUNK`` (one predicate shard), over many groups.
GROUP_SHARD_BATCH = 48
GROUP_SHARD_GROUPS = 64
GROUP_SHARD_GROUP_SIZE = 300
#: Counters that must match across worker counts — kernel totals,
#: routing tallies, and the cost model's decisions (timing and the
#: parallel-only shard counters excluded by design).
COMPARED_COUNTERS = (
    "predicate_scores", "mask_scores", "incremental_deltas",
    "full_recomputes", "batch_calls", "batch_predicates",
    "indexed_predicates", "indexed_ranges", "indexed_sets",
    "indexed_conjunctions", "conjunction_fallbacks", "masked_predicates",
    "index_builds", "cost_routed_mask", "cost_routed_prefix",
    "cost_routed_bucket", "cost_routed_gather", "cost_routed_conj",
)


def _worker_sweep() -> tuple[int, ...]:
    cap = int(os.environ.get("SCORPION_BENCH_MAX_WORKERS", "0") or 0)
    if cap > 0:
        return tuple(w for w in WORKER_SWEEP if w <= cap) or (1,)
    return WORKER_SWEEP


def _masked_batch(n: int) -> list[Predicate]:
    """2-clause conjunctions over a1/a2 — mask-kernel territory."""
    rng = np.random.default_rng(23)
    batch = []
    for i in range(n):
        lo1 = rng.uniform(0.0, 80.0)
        lo2 = rng.uniform(0.0, 80.0)
        batch.append(Predicate([
            RangeClause("a1", lo1, lo1 + rng.uniform(5.0, 40.0)),
            RangeClause("a2", lo2, lo2 + rng.uniform(5.0, 40.0),
                        include_hi=bool(i % 2)),
        ]))
    return batch


def _routed_batch(n: int) -> list[Predicate]:
    """Single-clause ranges over a1 — the index fast path's shape."""
    rng = np.random.default_rng(29)
    batch = []
    for i in range(n):
        lo = rng.uniform(0.0, 95.0)
        width = rng.uniform(2.0, 40.0) if i % 4 else rng.uniform(40.0, 100.0)
        batch.append(Predicate([
            RangeClause("a1", lo, lo + width, include_hi=bool(i % 2))]))
    return batch


def _many_group_problem() -> ScorpionQuery:
    """A SUM workload over ``GROUP_SHARD_GROUPS`` labeled groups — the
    shape where the group axis, not the predicate axis, carries the
    parallelism."""
    rng = np.random.default_rng(31)
    groups = [f"g{i:02d}" for i in range(GROUP_SHARD_GROUPS)]
    n = GROUP_SHARD_GROUP_SIZE * len(groups)
    g = np.repeat(groups, GROUP_SHARD_GROUP_SIZE)
    a1 = rng.uniform(0.0, 100.0, n)
    a2 = rng.uniform(0.0, 100.0, n)
    av = np.abs(rng.normal(10.0, 5.0, n)) + 0.25
    outliers = groups[: len(groups) // 2]
    hot = (np.isin(g, outliers) & (a1 >= 40) & (a1 <= 60)
           & (a2 >= 20) & (a2 <= 50))
    av[hot] += 25.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("a2", ColumnKind.CONTINUOUS),
        ColumnSpec("av", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {"g": g, "a1": a1, "a2": a2, "av": av})
    return ScorpionQuery(table, GroupByQuery("g", Sum(), "av"),
                         outliers=outliers,
                         holdouts=groups[len(groups) // 2:],
                         error_vectors=+1.0, c=0.5)


def _run_config(problem, batch, workers: int, prepare: tuple[str, ...],
                cost_model, expect_tiles: bool):
    """One (shape, workers) measurement: spin-up, timed batch, counters."""
    scorer = InfluenceScorer(problem, cache_scores=False, workers=workers,
                             batch_chunk=BATCH_CHUNK, cost_model=cost_model)
    try:
        if prepare:
            scorer.prepare_index(prepare)
        started = time.perf_counter()
        scorer.score_batch(batch[:2 * BATCH_CHUNK])  # spins the pool
        spinup = time.perf_counter() - started
        scorer.reset_stats()
        started = time.perf_counter()
        values = scorer.score_batch(batch)
        elapsed = time.perf_counter() - started
        counters = {name: getattr(scorer.stats, name)
                    for name in COMPARED_COUNTERS}
        if workers > 1:
            assert scorer.stats.parallel_shards > 0, \
                "parallel run never reached the worker pool"
            if expect_tiles:
                assert scorer.stats.parallel_group_shards > 0, \
                    "group-sharded shape never produced group tiles"
        return values, elapsed, spinup, counters
    finally:
        scorer.close()


def _experiment():
    dataset = synth_dataset(2, "easy", tuples_per_group=TUPLES_PER_GROUP)
    problem = dataset.scorpion_query(c=0.5)
    sweep = _worker_sweep()
    rows, json_rows = [], []
    speedups: dict[tuple[str, int], float] = {}
    shapes = (
        ("mask-kernel", problem, _masked_batch(BATCH_SIZE), (),
         force_mask_model(), TUPLES_PER_GROUP, False),
        ("index-routed", problem, _routed_batch(BATCH_SIZE), ("a1",),
         force_index_model(), TUPLES_PER_GROUP, False),
        ("group-sharded", _many_group_problem(),
         _masked_batch(GROUP_SHARD_BATCH), (), force_mask_model(),
         GROUP_SHARD_GROUP_SIZE, True),
    )
    for (shape, shape_problem, batch, prepare, cost_model, group_size,
         expect_tiles) in shapes:
        baseline_values = None
        baseline_counters = None
        baseline_time = None
        for workers in sweep:
            values, elapsed, spinup, counters = _run_config(
                shape_problem, batch, workers, prepare, cost_model,
                expect_tiles and workers > 1)
            if baseline_values is None:
                baseline_values = values
                baseline_counters = counters
                baseline_time = elapsed
            else:
                # The equivalence contract — asserted even in smoke runs.
                np.testing.assert_array_equal(values, baseline_values)
                assert counters == baseline_counters, (
                    f"{shape}: workers={workers} counters diverged: "
                    f"{counters} vs {baseline_counters}")
            speedup = baseline_time / elapsed if elapsed > 0 else float("inf")
            speedups[(shape, workers)] = speedup
            rows.append([
                shape, workers, len(batch),
                round(elapsed * 1e3, 1),
                round(len(batch) / elapsed, 1) if elapsed > 0 else None,
                round(speedup, 2),
                round(spinup * 1e3, 1),
            ])
            json_rows.append({
                "shape": shape,
                "tuples_per_group": group_size,
                "batch_size": len(batch),
                "batch_chunk": BATCH_CHUNK,
                "workers": workers,
                "preds_per_s": round(len(batch) / elapsed, 1)
                if elapsed > 0 else None,
                "speedup_vs_serial": round(speedup, 3),
                "spinup_ms": round(spinup * 1e3, 1),
                "cpu_count": os.cpu_count(),
            })
    return rows, json_rows, speedups


def test_parallel_scaling(benchmark):
    rows, json_rows, speedups = run_once(benchmark, _experiment)
    emit_report("parallel_scaling", format_table(
        "Sharded parallel scoring vs worker count "
        f"(batch {BATCH_SIZE}, chunk {BATCH_CHUNK}, "
        f"{TUPLES_PER_GROUP} tuples/group; group-sharded shape: "
        f"{GROUP_SHARD_BATCH} predicates over {GROUP_SHARD_GROUPS} groups "
        f"of {GROUP_SHARD_GROUP_SIZE}, {os.cpu_count()} CPUs)",
        ["shape", "workers", "batch", "batch ms", "preds/s",
         "speedup", "spinup ms"], rows))
    emit_bench_json("parallel_scaling", {
        "description": "score_batch sharded over worker processes: "
                       "predicates/second vs workers on mask-kernel, "
                       "index-routed, and group-sharded (few predicates, "
                       "many groups) shapes (serial equality and counter "
                       "parity asserted)",
        "rows": json_rows,
    })
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    cpus = os.cpu_count() or 1
    target = ("mask-kernel", 4)
    if cpus >= 4 and target in speedups:
        assert speedups[target] >= 2.5, (
            f"mask-kernel speedup at 4 workers is {speedups[target]:.2f}x "
            f"(< 2.5x) on a {cpus}-CPU machine")
    else:
        print(f"[parallel-scaling perf assertion skipped: "
              f"{cpus} CPU(s), sweep {_worker_sweep()}]")
