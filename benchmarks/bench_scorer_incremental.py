"""Ablation: the incrementally-removable property (Section 5.1).

The Scorer evaluates thousands of candidate predicates; recomputing the
aggregate over each group's remaining tuples costs O(|group|) per
(predicate, group), while the state protocol touches only the removed
rows.  We score the same predicate batch both ways and compare.
"""

import time

import numpy as np

from repro.core.influence import InfluenceScorer
from repro.eval import format_table
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate

from benchmarks.conftest import emit_report, run_once, synth_dataset


def _predicate_batch(n: int = 300):
    rng = np.random.default_rng(0)
    batch = []
    for _ in range(n):
        lo = rng.uniform(0, 80)
        width = rng.uniform(5, 20)
        batch.append(Predicate([RangeClause("a1", lo, lo + width)]))
    return batch


def _experiment():
    dataset = synth_dataset(2, "easy", tuples_per_group=2000)
    problem = dataset.scorpion_query(c=0.5)
    batch = _predicate_batch()
    rows = []
    outcomes = {}
    for label, incremental in (("incremental (state)", True),
                               ("black box (recompute)", False)):
        scorer = InfluenceScorer(problem, use_incremental=incremental,
                                 cache_scores=False)
        started = time.perf_counter()
        scores = [scorer.score(p) for p in batch]
        elapsed = time.perf_counter() - started
        rows.append([label, round(elapsed, 3),
                     scorer.stats.incremental_deltas,
                     scorer.stats.full_recomputes])
        outcomes[label] = (elapsed, scores)
    return rows, outcomes


def test_incremental_removal_speedup(benchmark):
    rows, outcomes = run_once(benchmark, _experiment)
    emit_report("ablation_incremental_scorer", format_table(
        "Ablation — Scorer with/without incremental removal (§5.1), "
        "300 predicates × 10 groups × 2000 tuples",
        ["configuration", "seconds", "incremental deltas",
         "full recomputes"], rows))
    fast_time, fast_scores = outcomes["incremental (state)"]
    slow_time, slow_scores = outcomes["black box (recompute)"]
    # Identical results...
    np.testing.assert_allclose(fast_scores, slow_scores, rtol=1e-9)
    # ...computed strictly cheaper.
    assert fast_time < slow_time
