"""Prefix-aggregate index vs mask-matrix scoring (the index tentpole).

Single-clause range predicates are the hot shape of NAIVE's opening
enumeration, MC's level-1 cells, DT leaf ranges, and Merger expansion
starts.  This bench scores identical single-range batches three ways —
scalar ``score()``, the batch mask-matrix kernel (``use_index=False``),
and the prefix-aggregate index path — across group sizes and on both
index tiers:

* *gather tier* — float aggregate values (SUM over SYNTH's float
  column), removed states gathered from the sorted slice in ascending
  row order;
* *prefix tier* — integer aggregate values (SUM over an integer copy of
  SYNTH), removed states as O(1) exact prefix-sum differences.

All three result vectors must match exactly (the equivalence contract;
always asserted).  The wall-clock expectation — the acceptance bar of
the index PR — is that at ≥2000 tuples/group the index path beats the
mask-matrix path outright: the mask kernel touches every labeled row
per predicate while the index touches two binary searches plus the
matched rows (or nothing but a prefix subtraction).  Timing assertions
are skipped when ``SCORPION_BENCH_PERF_ASSERT=0`` (CI smoke runs keep
only the equality checks).
"""

import os
import time

import numpy as np

from repro.aggregates import Sum
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.eval import format_table
from repro.predicates.clause import RangeClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table.table import Table

from benchmarks.conftest import (
    SCALE,
    emit_bench_json,
    emit_report,
    run_once,
    synth_dataset,
)

BATCH_SIZE = 2048 if SCALE == "paper" else 1024
GROUP_SIZES = (500, 2000, 5000) if SCALE == "paper" else (500, 2000)
#: Group sizes where the index path must beat the mask-matrix path
#: outright (the ISSUE 3 acceptance bar: ≥2000 tuples/group).
ASSERT_GROUP_SIZES = tuple(g for g in GROUP_SIZES if g >= 2000)
#: Scalar scoring is O(batch · labeled rows); cap its share of the bench.
SCALAR_BATCH_CAP = 256


def _range_batch(n: int, attribute: str = "a1"):
    """Single-clause ranges over one attribute with mixed selectivity
    (narrow cells through near-whole-domain spans)."""
    rng = np.random.default_rng(11)
    batch = []
    for i in range(n):
        lo = rng.uniform(0.0, 95.0)
        width = rng.uniform(2.0, 40.0) if i % 4 else rng.uniform(40.0, 100.0)
        batch.append(Predicate([
            RangeClause(attribute, lo, lo + width, include_hi=bool(i % 2))]))
    return batch


def _integer_sum_problem(problem: ScorpionQuery) -> ScorpionQuery:
    """The same SYNTH table with the aggregate column (``av``) rounded
    to integers and re-aggregated under SUM — integer-summable states,
    so every group index lands on the O(1) prefix tier."""
    table = problem.raw_table
    data = {name: np.asarray(table.values(name)).copy()
            for name in table.schema.names}
    data["av"] = np.floor(np.abs(data["av"])) + 1.0
    rows = list(zip(*(data[name] for name in table.schema.names)))
    rounded = Table.from_rows(table.schema, rows)
    return ScorpionQuery(
        rounded, GroupByQuery("ad", Sum(), "av"),
        outliers=problem.outlier_keys, holdouts=problem.holdout_keys,
        error_vectors=+1.0, c=problem.c,
    )


def _time_paths(problem, batch, tier: str):
    """Score one batch through all three paths; returns the report row,
    the json row, and the mask/index second pair."""
    scalar_batch = batch[:SCALAR_BATCH_CAP]
    scalar_scorer = InfluenceScorer(problem, cache_scores=False,
                                    use_index=False)
    started = time.perf_counter()
    scalar = np.asarray([scalar_scorer.score(p) for p in scalar_batch])
    scalar_time = time.perf_counter() - started

    mask_scorer = InfluenceScorer(problem, cache_scores=False,
                                  use_index=False)
    started = time.perf_counter()
    via_mask = mask_scorer.score_batch(batch)
    mask_time = time.perf_counter() - started

    index_scorer = InfluenceScorer(problem, cache_scores=False)
    index_scorer.prepare_index(["a1"])
    build_time = index_scorer.stats.index_build_seconds
    started = time.perf_counter()
    via_index = index_scorer.score_batch(batch)
    index_time = time.perf_counter() - started

    # The equivalence contract — asserted even in smoke runs.
    np.testing.assert_array_equal(via_index, via_mask)
    np.testing.assert_array_equal(via_index[:len(scalar)], scalar)
    assert index_scorer.stats.indexed_predicates == len(set(batch))

    group_size = problem.outlier_results[0].group_size
    speedup = mask_time / index_time if index_time > 0 else float("inf")
    row = [
        tier, group_size, len(batch),
        round(scalar_time * 1e3, 2),
        round(mask_time * 1e3, 2),
        round(index_time * 1e3, 2),
        round(build_time * 1e3, 2),
        round(speedup, 2),
    ]
    json_row = {
        "tier": tier,
        "tuples_per_group": group_size,
        "batch_size": len(batch),
        "scalar_preds_per_s": round(len(scalar_batch) / scalar_time, 1)
        if scalar_time > 0 else None,
        "masked_preds_per_s": round(len(batch) / mask_time, 1)
        if mask_time > 0 else None,
        "indexed_preds_per_s": round(len(batch) / index_time, 1)
        if index_time > 0 else None,
        "index_build_ms": round(build_time * 1e3, 3),
        "index_vs_mask_speedup": round(speedup, 3),
    }
    return row, json_row, speedup


def _experiment():
    batch = _range_batch(BATCH_SIZE)
    rows, json_rows = [], []
    speedups = {}
    for group_size in GROUP_SIZES:
        dataset = synth_dataset(2, "easy", tuples_per_group=group_size)
        float_problem = dataset.scorpion_query(c=0.5)
        for tier, problem in (("gather/sum", float_problem),
                              ("prefix/sum", _integer_sum_problem(float_problem))):
            row, json_row, speedup = _time_paths(problem, batch, tier)
            rows.append(row)
            json_rows.append(json_row)
            speedups[(tier, group_size)] = speedup
    return rows, json_rows, speedups


def test_index_beats_mask_matrix(benchmark):
    rows, json_rows, speedups = run_once(benchmark, _experiment)
    emit_report("prefix_index", format_table(
        "Prefix-aggregate index vs mask-matrix scoring "
        f"(single-range predicates, batch {BATCH_SIZE}, 10 groups)",
        ["tier", "tuples/group", "batch", "scalar ms*", "mask ms",
         "index ms", "build ms", "index speedup"], rows)
        + f"\n* scalar timed on the first {SCALAR_BATCH_CAP} predicates")
    emit_bench_json("prefix_index", {
        "description": "single-clause range predicates: scalar vs "
                       "mask-matrix vs prefix-aggregate index "
                       "(predicates/second; equality asserted)",
        "rows": json_rows,
    })
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    for (tier, group_size), speedup in speedups.items():
        if group_size in ASSERT_GROUP_SIZES:
            assert speedup > 1.0, (
                f"index path slower than mask path on {tier} at "
                f"{group_size} tuples/group (speedup {speedup:.2f})")
