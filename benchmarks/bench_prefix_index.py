"""Prefix-aggregate index vs mask-matrix scoring (the index tentpole).

Single-clause ranges, single set clauses, and 2-clause conjunctions are
the hot shapes of NAIVE's enumeration, MC's level-1 cells, DT leaves,
and Merger expansions.  This bench scores identical batches three ways
— scalar ``score()``, the batch mask-matrix kernel (``use_index=False``),
and the planner-routed index path — across group sizes and on every
index tier:

* *gather tier* — single ranges over float aggregate values (SUM over
  SYNTH's float column), removed states gathered from the sorted slice
  in ascending row order;
* *prefix tier* — single ranges over integer aggregate values (SUM over
  an integer copy of SYNTH), removed states as O(1) exact prefix-sum
  differences;
* *bucket tier* — single set clauses over a discrete attribute with
  integer aggregate values, removed states as exact per-bucket sums
  (``bucket-gather`` is the same shape on float values);
* *conjunction tier* — 2-clause range×set conjunctions, the rarer
  clause's slice/buckets probed and mask-tested.

All three result vectors must match exactly (the equivalence contract;
always asserted), and the routed tier is checked through the
``scorer_stats`` counters.  Routing is pinned to the shipped
:data:`~repro.index.DEFAULT_CONSTANTS` (not the machine-calibrated
singleton) so the counters below are reproducible anywhere; on the
conjunction batch the cost model legitimately splits the batch —
narrow probes take the conjunction tier, unselective ones the mask
kernel — so that case asserts the split, not full-tier routing.

The wall-clock expectation — the acceptance bars of the index PRs — is
that at ≥2000 tuples/group the index path beats the mask-matrix path
outright on every tier, by ≥2× on the discrete bucket tier, and that
cost-routed conjunctions never lose to the plain mask kernel
(≥ 1.0×) at *any* group size, 500 tuples/group included — the shape
the old ``PROBE_FRACTION_CAP`` heuristic used to misroute.  Timing is
min-of-2 per path to damp scheduler noise.  Timing assertions are
skipped when ``SCORPION_BENCH_PERF_ASSERT=0`` (CI smoke runs keep only
the equality checks).
"""

import os
import time

import numpy as np

from repro.aggregates import Sum
from repro.core.influence import InfluenceScorer
from repro.core.problem import ScorpionQuery
from repro.index import DEFAULT_CONSTANTS, CostModel
from repro.eval import format_table
from repro.predicates.clause import RangeClause, SetClause
from repro.predicates.predicate import Predicate
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

from benchmarks.conftest import (
    SCALE,
    emit_bench_json,
    emit_report,
    run_once,
    synth_dataset,
)

BATCH_SIZE = 2048 if SCALE == "paper" else 1024
GROUP_SIZES = (500, 2000, 5000) if SCALE == "paper" else (500, 2000)
#: Group sizes where the index path must beat the mask-matrix path
#: outright (the ISSUE 3 acceptance bar: ≥2000 tuples/group).
ASSERT_GROUP_SIZES = tuple(g for g in GROUP_SIZES if g >= 2000)
#: The ISSUE 5 acceptance bar: the discrete bucket tier must beat the
#: mask kernel by this factor at ≥2000 tuples/group.
BUCKET_SPEEDUP_BAR = 2.0
#: Distinct values of the bench's discrete attribute.
DISCRETE_CARDINALITY = 24
#: Scalar scoring is O(batch · labeled rows); cap its share of the bench.
SCALAR_BATCH_CAP = 256


def _range_batch(n: int, attribute: str = "a1"):
    """Single-clause ranges over one attribute with mixed selectivity
    (narrow cells through near-whole-domain spans)."""
    rng = np.random.default_rng(11)
    batch = []
    for i in range(n):
        lo = rng.uniform(0.0, 95.0)
        width = rng.uniform(2.0, 40.0) if i % 4 else rng.uniform(40.0, 100.0)
        batch.append(Predicate([
            RangeClause(attribute, lo, lo + width, include_hi=bool(i % 2))]))
    return batch


def _set_batch(n: int, attribute: str = "ac"):
    """Single set clauses with 1–4 wanted values (NAIVE's discrete
    enumeration shape), occasionally naming an absent value."""
    rng = np.random.default_rng(13)
    codes = [f"c{i}" for i in range(DISCRETE_CARDINALITY)] + ["absent"]
    batch = []
    for i in range(n):
        size = 1 + i % 4
        batch.append(Predicate([
            SetClause(attribute, rng.choice(codes, size=size, replace=False))]))
    return batch


def _conj_batch(n: int):
    """2-clause range×set conjunctions with selectivity mixed so either
    side ends up the rarer (probe) one."""
    rng = np.random.default_rng(17)
    codes = [f"c{i}" for i in range(DISCRETE_CARDINALITY)]
    batch = []
    for i in range(n):
        lo = rng.uniform(0.0, 90.0)
        if i % 2:
            # Wide range, quarter-domain set: the set side probes.
            width = rng.uniform(40.0, 100.0)
            size = DISCRETE_CARDINALITY // 4
        else:
            # Narrow range, small-to-medium set: the range side probes.
            width = rng.uniform(2.0, 25.0)
            size = 1 + i % 3
        batch.append(Predicate([
            RangeClause("a1", lo, lo + width),
            SetClause("ac", rng.choice(codes, size=size, replace=False)),
        ]))
    return batch


def _discrete_problem(tuples_per_group: int, *, integer_values: bool,
                      seed: int = 0) -> ScorpionQuery:
    """A 10-group SUM workload with one continuous and one discrete
    explanation attribute (SYNTH has no discrete ``A_rest``, so the
    discrete/conjunction tiers get their own planted table)."""
    rng = np.random.default_rng(seed)
    groups = [f"g{i}" for i in range(10)]
    n = tuples_per_group * len(groups)
    g = np.repeat(groups, tuples_per_group)
    a1 = rng.uniform(0.0, 100.0, n)
    ac = rng.choice([f"c{i}" for i in range(DISCRETE_CARDINALITY)], n)
    if integer_values:
        av = rng.integers(1, 50, n).astype(np.float64)
    else:
        av = np.abs(rng.normal(10.0, 5.0, n)) + 0.25
    hot = (np.isin(g, groups[:5]) & (ac == "c0") & (a1 >= 40) & (a1 <= 60))
    av[hot] += 40.0 if integer_values else 40.5
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("ac", ColumnKind.DISCRETE),
        ColumnSpec("av", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {"g": g, "a1": a1, "ac": ac, "av": av})
    return ScorpionQuery(table, GroupByQuery("g", Sum(), "av"),
                         outliers=groups[:5], holdouts=groups[5:],
                         error_vectors=+1.0, c=0.5)


def _integer_sum_problem(problem: ScorpionQuery) -> ScorpionQuery:
    """The same SYNTH table with the aggregate column (``av``) rounded
    to integers and re-aggregated under SUM — integer-summable states,
    so every group index lands on the O(1) prefix tier."""
    table = problem.raw_table
    data = {name: np.asarray(table.values(name)).copy()
            for name in table.schema.names}
    data["av"] = np.floor(np.abs(data["av"])) + 1.0
    rows = list(zip(*(data[name] for name in table.schema.names)))
    rounded = Table.from_rows(table.schema, rows)
    return ScorpionQuery(
        rounded, GroupByQuery("ad", Sum(), "av"),
        outliers=problem.outlier_keys, holdouts=problem.holdout_keys,
        error_vectors=+1.0, c=problem.c,
    )


def _timed_batch(scorer, batch, reps: int = 2):
    """Score ``batch`` ``reps`` times, returning the values and the
    best wall-clock (stats reset between reps, so counters afterwards
    reflect exactly one pass)."""
    best, values = float("inf"), None
    for _ in range(reps):
        scorer.reset_stats()
        started = time.perf_counter()
        values = scorer.score_batch(batch)
        best = min(best, time.perf_counter() - started)
    return values, best


def _time_paths(problem, batch, tier: str, prepare=("a1",),
                routing_counter: str = "indexed_ranges",
                mixed_routing: bool = False):
    """Score one batch through all three paths; returns the report row,
    the json row, and the index-vs-mask speedup.  ``routing_counter``
    names the ``scorer_stats`` tier counter every unique predicate of
    the batch must land in; with ``mixed_routing`` the cost model is
    instead expected to split the batch between that tier and the mask
    kernel (and must use the tier at least once)."""
    scalar_batch = batch[:SCALAR_BATCH_CAP]
    scalar_scorer = InfluenceScorer(problem, cache_scores=False,
                                    use_index=False)
    started = time.perf_counter()
    scalar = np.asarray([scalar_scorer.score(p) for p in scalar_batch])
    scalar_time = time.perf_counter() - started

    mask_scorer = InfluenceScorer(problem, cache_scores=False,
                                  use_index=False)
    via_mask, mask_time = _timed_batch(mask_scorer, batch)

    index_scorer = InfluenceScorer(problem, cache_scores=False,
                                   cost_model=CostModel(DEFAULT_CONSTANTS))
    index_scorer.prepare_index(prepare)
    build_time = index_scorer.stats.index_build_seconds
    via_index, index_time = _timed_batch(index_scorer, batch)

    # The equivalence contract — asserted even in smoke runs.
    np.testing.assert_array_equal(via_index, via_mask)
    np.testing.assert_array_equal(via_index[:len(scalar)], scalar)
    stats = index_scorer.stats
    routed = getattr(stats, routing_counter)
    if mixed_routing:
        assert routed + stats.conjunction_fallbacks == len(set(batch))
        assert routed > 0, f"{tier}: cost model never picked the tier"
        assert stats.cost_routed_conj == routed
    else:
        assert stats.indexed_predicates == len(set(batch))
        assert routed == len(set(batch))

    group_size = problem.outlier_results[0].group_size
    speedup = mask_time / index_time if index_time > 0 else float("inf")
    row = [
        tier, group_size, len(batch),
        round(scalar_time * 1e3, 2),
        round(mask_time * 1e3, 2),
        round(index_time * 1e3, 2),
        round(build_time * 1e3, 2),
        round(speedup, 2),
    ]
    json_row = {
        "tier": tier,
        "tuples_per_group": group_size,
        "batch_size": len(batch),
        "scalar_preds_per_s": round(len(scalar_batch) / scalar_time, 1)
        if scalar_time > 0 else None,
        "masked_preds_per_s": round(len(batch) / mask_time, 1)
        if mask_time > 0 else None,
        "indexed_preds_per_s": round(len(batch) / index_time, 1)
        if index_time > 0 else None,
        "index_build_ms": round(build_time * 1e3, 3),
        "index_vs_mask_speedup": round(speedup, 3),
    }
    return row, json_row, speedup


def _experiment():
    range_batch = _range_batch(BATCH_SIZE)
    set_batch = _set_batch(BATCH_SIZE)
    conj_batch = _conj_batch(BATCH_SIZE)
    rows, json_rows = [], []
    speedups = {}
    for group_size in GROUP_SIZES:
        dataset = synth_dataset(2, "easy", tuples_per_group=group_size)
        float_problem = dataset.scorpion_query(c=0.5)
        int_discrete = _discrete_problem(group_size, integer_values=True)
        float_discrete = _discrete_problem(group_size, integer_values=False)
        cases = (
            ("gather/sum", float_problem, range_batch,
             ("a1",), "indexed_ranges"),
            ("prefix/sum", _integer_sum_problem(float_problem), range_batch,
             ("a1",), "indexed_ranges"),
            ("bucket/sum", int_discrete, set_batch,
             ("ac",), "indexed_sets"),
            ("bucket-gather/sum", float_discrete, set_batch,
             ("ac",), "indexed_sets"),
            ("conj/sum", int_discrete, conj_batch,
             ("a1", "ac"), "indexed_conjunctions"),
        )
        for tier, problem, batch, prepare, counter in cases:
            row, json_row, speedup = _time_paths(
                problem, batch, tier, prepare=prepare,
                routing_counter=counter,
                mixed_routing=(tier == "conj/sum"))
            rows.append(row)
            json_rows.append(json_row)
            speedups[(tier, group_size)] = speedup
    return rows, json_rows, speedups


def test_index_beats_mask_matrix(benchmark):
    rows, json_rows, speedups = run_once(benchmark, _experiment)
    emit_report("prefix_index", format_table(
        "Prefix-aggregate index vs mask-matrix scoring "
        f"(range / set / conjunction batches of {BATCH_SIZE}, 10 groups)",
        ["tier", "tuples/group", "batch", "scalar ms*", "mask ms",
         "index ms", "build ms", "index speedup"], rows)
        + f"\n* scalar timed on the first {SCALAR_BATCH_CAP} predicates")
    emit_bench_json("prefix_index", {
        "description": "single-range, single-set, and 2-clause "
                       "conjunction predicates: scalar vs mask-matrix "
                       "vs prefix-aggregate index tiers "
                       "(predicates/second; equality asserted)",
        "rows": json_rows,
    })
    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    for (tier, group_size), speedup in speedups.items():
        if tier == "conj/sum":
            # Cost-routed conjunctions must never lose to the plain
            # mask kernel — at any group size, 500 tuples/group
            # included (the shape the fraction-cap heuristic misrouted).
            assert speedup >= 1.0, (
                f"cost-routed conjunctions lost to the mask kernel at "
                f"{group_size} tuples/group (speedup {speedup:.2f})")
            continue
        if group_size not in ASSERT_GROUP_SIZES:
            continue
        bar = BUCKET_SPEEDUP_BAR if tier.startswith("bucket") else 1.0
        assert speedup > bar, (
            f"index path speedup bar missed on {tier} at {group_size} "
            f"tuples/group (speedup {speedup:.2f} <= {bar})")
