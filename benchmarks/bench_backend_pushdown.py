"""Numpy vs DuckDB pushdown backend: end-to-end explain throughput.

The execution-backend seam lets state building, index-view
construction, and SQL evaluation route through an engine instead of
the in-process numpy kernels.  This bench runs the same planted-SUM
explain through both backends and records explains/second plus the
``backend_routed_*`` gauge evidence that the pushdowns actually
engaged (the planted table is integer-valued, so every pushdown is
``exactly_summable``-eligible).

The backend contract makes the comparison honest: both runs must
produce bit-for-bit identical predicates and influences, asserted
inside the experiment.  When the ``duckdb`` package is not installed
the DuckDB row is emitted with ``available: false`` and null rates so
the ledger still records that the comparison was attempted.

Expected shape: at laptop scale the numpy kernels win — the data fits
in cache and DuckDB pays per-call registration/materialisation
overhead.  The pushdown's value is the seam itself (states computed
where the data lives); the ledger tracks the gap rather than asserting
a direction.
"""

import time

import numpy as np

from repro.aggregates import Sum
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.eval import format_table
from repro.query.groupby import GroupByQuery
from repro.table import ColumnKind, ColumnSpec, Schema, Table

from benchmarks.conftest import emit_bench_json, emit_report, run_once

try:
    import duckdb  # noqa: F401
    DUCKDB_AVAILABLE = True
except ImportError:
    DUCKDB_AVAILABLE = False

#: Fresh-problem explains timed per backend (fresh Scorpion + problem
#: each round so the DT cache cannot amortise across iterations).
N_EXPLAINS = 3
N_PER_GROUP = 400
N_GROUPS = 6


def _planted_problem(seed: int) -> ScorpionQuery:
    """A planted-SUM workload with integer-valued tuple states, so the
    DuckDB pushdowns (group totals, prefix/bucket views) all engage."""
    rng = np.random.default_rng(seed)
    n = N_PER_GROUP * N_GROUPS
    groups = np.repeat([f"g{i}" for i in range(N_GROUPS)], N_PER_GROUP)
    a1 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(groups, ["g0", "g1"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "g": groups, "a1": a1, "state": state, "value": value,
    })
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Sum(), "value"),
        outliers=["g0", "g1"],
        holdouts=[f"g{i}" for i in range(2, N_GROUPS)],
        error_vectors=+1.0,
        c=0.5,
    )


def _time_backend(backend_name: str):
    """Explain N_EXPLAINS fresh problems; return (rate, result, stats)."""
    elapsed = 0.0
    last = None
    for i in range(N_EXPLAINS):
        problem = _planted_problem(seed=i)
        scorpion = Scorpion(algorithm="dt", backend=backend_name)
        started = time.perf_counter()
        last = scorpion.explain(problem)
        elapsed += time.perf_counter() - started
    rate = N_EXPLAINS / elapsed if elapsed > 0 else float("inf")
    return rate, last, last.scorer_stats


def _experiment():
    rows = []
    json_rows = []
    numpy_rate, numpy_result, numpy_stats = _time_backend("numpy")
    rows.append(["numpy", round(numpy_rate, 2), 0, 0, 0])
    json_rows.append({
        "backend": "numpy",
        "available": True,
        "explains_per_s": round(numpy_rate, 3),
        "backend_routed_states": numpy_stats["backend_routed_states"],
        "backend_routed_views": numpy_stats["backend_routed_views"],
        "backend_fallbacks": numpy_stats["backend_fallbacks"],
    })

    if DUCKDB_AVAILABLE:
        duck_rate, duck_result, duck_stats = _time_backend("duckdb")
        # The backend contract: pushdown execution is bit-for-bit
        # invisible in the explanations.
        assert [str(e.predicate) for e in duck_result.explanations] == \
            [str(e.predicate) for e in numpy_result.explanations]
        assert [e.influence for e in duck_result.explanations] == \
            [e.influence for e in numpy_result.explanations]
        assert duck_stats["backend_routed_states"] > 0, \
            "planted integer states should have routed to DuckDB"
        rows.append(["duckdb", round(duck_rate, 2),
                     duck_stats["backend_routed_states"],
                     duck_stats["backend_routed_views"],
                     duck_stats["backend_fallbacks"]])
        json_rows.append({
            "backend": "duckdb",
            "available": True,
            "explains_per_s": round(duck_rate, 3),
            "backend_routed_states": duck_stats["backend_routed_states"],
            "backend_routed_views": duck_stats["backend_routed_views"],
            "backend_fallbacks": duck_stats["backend_fallbacks"],
        })
    else:
        rows.append(["duckdb", "(not installed)", "-", "-", "-"])
        json_rows.append({
            "backend": "duckdb",
            "available": False,
            "explains_per_s": None,
            "backend_routed_states": None,
            "backend_routed_views": None,
            "backend_fallbacks": None,
        })
    return rows, json_rows


def test_backend_pushdown_throughput(benchmark):
    rows, json_rows = run_once(benchmark, _experiment)
    emit_report("backend_pushdown", format_table(
        f"Explain throughput by execution backend "
        f"(planted SUM, {N_GROUPS}x{N_PER_GROUP} rows, DT)",
        ["backend", "explains/s", "routed states", "routed views",
         "fallbacks"], rows))
    emit_bench_json("backend_pushdown", {
        "description": "end-to-end DT explains/second, numpy kernels vs "
                       "DuckDB pushdown backend on an integer-valued "
                       "planted-SUM workload (bit-equal results asserted)",
        "duckdb_available": DUCKDB_AVAILABLE,
        "n_explains": N_EXPLAINS,
        "rows_per_explain": N_PER_GROUP * N_GROUPS,
        "rows": json_rows,
    })
    assert rows, "no backend rows produced"
