"""Self-healing under a crash storm: explains/sec before, during, and
after ``worker.shard:crash@p0.6~s7`` (the ISSUE 9 resilience
experiment).

Three measured phases over one resident :class:`ExplainService` with a
parallel scorer (``workers=2``):

* **before** — healthy pool, warm cache: the baseline explains/sec;
* **storm** — every worker shard crashes with probability 0.6 (seeded,
  so the storm is reproducible).  Batches burn their retry budget,
  restart pools, then the circuit opens and batches degrade to serial —
  throughput drops but every answer stays bit-for-bit correct;
* **after** — the schedule is disarmed; the breaker's half-open probe
  restores parallel scoring.  The time from disarm to a
  fully-``parallel`` health report is the recovery time.

Every explain in every phase is asserted bit-for-bit equal to a
fault-free serial reference — the chaos differential oracle at
benchmark scale.  Results land in ``BENCH_scorer.json`` under
``fault_recovery``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.aggregates import Sum
from repro.core.scorpion import Scorpion
from repro.core.problem import ScorpionQuery
from repro.eval import format_table
from repro.faults import clear_faults, install_faults
from repro.obs.metrics import REGISTRY
from repro.query.groupby import GroupByQuery
from repro.service import ExplainService
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

from benchmarks.conftest import SCALE, emit_bench_json, emit_report, run_once

STORM = "worker.shard:crash@p0.6~s7"

N_PER_GROUP = 1200 if SCALE == "paper" else 400
N_GROUPS = 12
#: Explains per phase (cycled over the c values below: warm cache hits).
PHASE_REQUESTS = 12 if SCALE == "paper" else 6
C_CYCLE = (0.5, 0.3, 0.1)

OUTLIERS = ["g00", "g01"]
HOLDOUTS = ["g02", "g03"]


def _storm_table() -> Table:
    rng = np.random.default_rng(7)
    n = N_GROUPS * N_PER_GROUP
    groups = np.repeat([f"g{i:02d}" for i in range(N_GROUPS)], N_PER_GROUP)
    a1 = rng.uniform(0, 100, n)
    a2 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(groups, OUTLIERS) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("a2", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    return Table.from_columns(schema, {
        "g": groups, "a1": a1, "a2": a2, "state": state, "value": value,
    })


def _image(result):
    return [(e.predicate, e.influence, e.n_matched,
             e.updated_outliers, e.updated_holdouts)
            for e in result.explanations]


def _counter(name: str) -> float:
    metric = REGISTRY.get(name)
    return metric.value if metric is not None else 0.0


def _phase(service, table, query, reference, n=PHASE_REQUESTS):
    """Run ``n`` warm explains, asserting each against the serial
    reference for its ``c``; returns explains/sec."""
    started = time.perf_counter()
    for i in range(n):
        c = C_CYCLE[i % len(C_CYCLE)]
        result = service.explain_request(table, query, OUTLIERS, HOLDOUTS,
                                         +1.0, c=c)
        assert _image(result) == reference[c], \
            f"explain diverged from the fault-free serial reference (c={c})"
    return n / (time.perf_counter() - started)


def _experiment(monkeypatch_env):
    # Fast-recovery knobs: these shape the *policy*, not the answers.
    # They must be set before the service builds its scorer (the
    # recovery object reads them at construction).
    for name, value in (("SCORPION_POOL_BACKOFF", "0.01"),
                        ("SCORPION_POOL_COOLDOWN", "0.2")):
        monkeypatch_env.setenv(name, value)

    table = _storm_table()
    query = GroupByQuery("g", Sum(), "value")
    reference = {}
    for c in C_CYCLE:
        problem = ScorpionQuery(table, query, OUTLIERS, HOLDOUTS, +1.0, c=c)
        reference[c] = _image(Scorpion(algorithm="mc", use_cache=False,
                                       workers=1).explain(problem))

    counters0 = {name: _counter(name) for name in (
        "scorpion_pool_retries_total", "scorpion_pool_restarts_total",
        "scorpion_degraded_batches_total")}

    with ExplainService(algorithm="mc", use_cache=False, workers=2,
                        batch_chunk=8) as service:
        # Prime the entry (one miss: problem image + pool startup).
        primed = service.explain_request(table, query, OUTLIERS, HOLDOUTS,
                                         +1.0, c=C_CYCLE[0])
        assert primed.scorer_stats["parallel_shards"] > 0, \
            "benchmark workload never engaged the worker pool"

        before_rps = _phase(service, table, query, reference)

        # Storm onset: arm the schedule and kill the live workers.
        # Forked workers snapshot the registry at pool start, so the
        # healthy pre-storm pool is immune until it dies — every pool
        # (re)started while the storm is armed forks crash-armed
        # workers, which is exactly how the storm persists.
        install_faults(STORM)
        scorer = next(iter(service._entries.values())).scorer
        executor = scorer._executor
        if executor is not None and executor._pool is not None:
            for process in executor._pool._processes.values():
                process.kill()
        try:
            storm_rps = _phase(service, table, query, reference)
        finally:
            clear_faults()

        # Recovery: time from disarm until health reports every pool
        # parallel again (the breaker's half-open probe must succeed).
        recover_started = time.perf_counter()
        while any(p["state"] != "parallel"
                  for p in service.health()["pools"]):
            assert time.perf_counter() - recover_started < 60.0, \
                "pool never recovered to parallel after the storm"
            time.sleep(0.05)
            service.explain_request(table, query, OUTLIERS, HOLDOUTS,
                                    +1.0, c=C_CYCLE[0])
        recovery_s = time.perf_counter() - recover_started

        after_rps = _phase(service, table, query, reference)
        assert all(p["state"] == "parallel"
                   for p in service.health()["pools"])

    deltas = {name: _counter(name) - counters0[name] for name in counters0}
    return before_rps, storm_rps, after_rps, recovery_s, deltas


def test_fault_recovery(benchmark, monkeypatch):
    before, storm, after, recovery_s, deltas = run_once(
        benchmark, lambda: _experiment(monkeypatch))
    emit_report("fault_recovery", format_table(
        f"Crash storm ({STORM}) — warm explains/sec per phase "
        "(workers=2; every answer asserted against the serial reference)",
        ["phase", "explains/sec"],
        [["before", round(before, 2)],
         ["storm", round(storm, 2)],
         ["after", round(after, 2)],
         ["recovery (s)", round(recovery_s, 3)]]))
    emit_bench_json("fault_recovery", {
        "description": "Resident-service explain throughput before/during/"
                       "after a seeded worker crash storm; recovery_seconds "
                       "is disarm-to-parallel-health time",
        "storm": STORM,
        "requests_per_phase": PHASE_REQUESTS,
        "before_explains_per_second": round(before, 3),
        "storm_explains_per_second": round(storm, 3),
        "after_explains_per_second": round(after, 3),
        "recovery_seconds": round(recovery_s, 4),
        "pool_retries": int(deltas["scorpion_pool_retries_total"]),
        "pool_restarts": int(deltas["scorpion_pool_restarts_total"]),
        "degraded_batches": int(deltas["scorpion_degraded_batches_total"]),
    })
    # The storm must actually have exercised the self-healing machinery.
    assert deltas["scorpion_pool_retries_total"] >= 1
    assert deltas["scorpion_degraded_batches_total"] >= 0
