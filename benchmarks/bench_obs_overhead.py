"""Observability overhead: traced explains must be bit-for-bit equal to
untraced ones and cost < 3% extra wall clock.

Two legs:

* **disabled path** — tracing off (the default): the instrumentation
  collapses to one ContextVar read per ``span()`` call site, measured
  directly in ns/call.
* **enabled path** — ``Scorpion(trace=True)`` vs untraced, interleaved
  A/B runs over a scoring-heavy MC problem (many ``score_batch`` spans,
  the hottest instrumentation point).  Every traced result is asserted
  bit-for-bit equal to its untraced twin — explanations, influences,
  matched rows, updated outputs, and every scorer counter (timing keys
  exempt) — so the overhead bound is measured on provably identical
  work.

The < 3% bound is asserted on the enabled-path median and skipped when
``SCORPION_BENCH_PERF_ASSERT=0`` (CI smoke runs keep the equality
checks).
"""

import os
import statistics
import time

import numpy as np

from repro.aggregates import Sum
from repro.core.problem import ScorpionQuery
from repro.core.scorpion import Scorpion
from repro.eval import format_table
from repro.obs.trace import span
from repro.query.groupby import GroupByQuery
from repro.table.schema import ColumnKind, ColumnSpec, Schema
from repro.table.table import Table

from benchmarks.conftest import SCALE, emit_bench_json, emit_report, run_once

#: The acceptance bar: traced wall clock within this fraction of untraced.
MAX_OVERHEAD = 0.03

N_GROUPS = 8
N_PER_GROUP = 2000 if SCALE == "paper" else 600
#: Interleaved untraced/traced measurement pairs (medians reported).
REPS = 15 if SCALE == "paper" else 9


def _scoring_heavy_problem() -> ScorpionQuery:
    """A SUM workload where partitioning/scoring dominates the explain:
    few groups (cheap build) but a planted multi-clause subspace the
    partitioner has to work for."""
    rng = np.random.default_rng(11)
    n = N_GROUPS * N_PER_GROUP
    groups = np.repeat([f"g{i}" for i in range(N_GROUPS)], N_PER_GROUP)
    a1 = rng.uniform(0, 100, n)
    a2 = rng.uniform(0, 100, n)
    state = rng.choice(["CA", "NY", "TX", "WA"], n)
    value = np.ones(n)
    hot = (np.isin(groups, ["g0", "g1", "g2"]) & (state == "TX")
           & (a1 >= 40) & (a1 <= 60))
    value[hot] = 50.0
    schema = Schema([
        ColumnSpec("g", ColumnKind.DISCRETE),
        ColumnSpec("a1", ColumnKind.CONTINUOUS),
        ColumnSpec("a2", ColumnKind.CONTINUOUS),
        ColumnSpec("state", ColumnKind.DISCRETE),
        ColumnSpec("value", ColumnKind.CONTINUOUS),
    ])
    table = Table.from_columns(schema, {
        "g": groups, "a1": a1, "a2": a2, "state": state, "value": value,
    })
    return ScorpionQuery(
        table=table,
        query=GroupByQuery("g", Sum(), "value"),
        outliers=["g0", "g1", "g2"],
        holdouts=[f"g{i}" for i in range(3, N_GROUPS)],
        error_vectors=+1.0,
        c=0.3,
    )


def _explanation_image(result):
    return [(e.predicate, e.influence, e.n_matched,
             e.updated_outliers, e.updated_holdouts)
            for e in result.explanations]


def _assert_identical(traced, untraced):
    assert _explanation_image(traced) == _explanation_image(untraced)
    assert traced.n_candidates == untraced.n_candidates
    keys = set(traced.scorer_stats) | set(untraced.scorer_stats)
    diverging = {
        k for k in keys
        if traced.scorer_stats.get(k) != untraced.scorer_stats.get(k)
        and not k.endswith("_seconds") and k != "batch_throughput"
    }
    assert not diverging, \
        f"tracing perturbed scorer counters: {sorted(diverging)}"


def _noop_span_ns(calls: int = 200_000) -> float:
    """ns per ``span()`` call with no tracer active (the default path)."""
    started = time.perf_counter_ns()
    for _ in range(calls):
        with span("bench") as sp:
            if sp:
                sp.annotate(never=1)
    return (time.perf_counter_ns() - started) / calls


def test_tracing_overhead(benchmark):
    problem = _scoring_heavy_problem()

    def experiment():
        explain = lambda traced: Scorpion(
            algorithm="mc", trace=traced).explain(problem)
        # Warm process-wide state (cost calibration, numpy paths) off
        # the clock so neither arm pays it.
        baseline = explain(False)
        _assert_identical(explain(True), baseline)

        untraced_s, traced_s = [], []
        for rep in range(REPS):
            # Alternate which arm runs first so slow drift (thermal,
            # page cache) cancels instead of biasing one arm.
            first_traced = bool(rep % 2)
            t0 = time.perf_counter()
            a = explain(first_traced)
            t1 = time.perf_counter()
            b = explain(not first_traced)
            t2 = time.perf_counter()
            traced, plain = (a, b) if first_traced else (b, a)
            traced_s.append((t1 - t0) if first_traced else (t2 - t1))
            untraced_s.append((t2 - t1) if first_traced else (t1 - t0))
            _assert_identical(traced, plain)
            assert plain.trace is None
            assert traced.trace, "traced run exported no spans"

        untraced_med = statistics.median(untraced_s)
        traced_med = statistics.median(traced_s)
        overhead = traced_med / untraced_med - 1.0
        spans_recorded = len(traced.trace)
        noop_ns = _noop_span_ns()
        return untraced_med, traced_med, overhead, spans_recorded, noop_ns

    untraced_med, traced_med, overhead, spans_recorded, noop_ns = \
        run_once(benchmark, experiment)

    rows = [
        ("untraced explain (median s)", f"{untraced_med:.4f}"),
        ("traced explain (median s)", f"{traced_med:.4f}"),
        ("overhead", f"{overhead * 100:+.2f}%"),
        ("spans per explain", str(spans_recorded)),
        ("disabled span() ns/call", f"{noop_ns:.0f}"),
    ]
    emit_report("obs_overhead", format_table(
        f"Tracing overhead (scale={SCALE}, reps={REPS})",
        ("metric", "value"), rows))
    emit_bench_json("obs_overhead", {
        "untraced_median_s": untraced_med,
        "traced_median_s": traced_med,
        "overhead_fraction": overhead,
        "spans_per_explain": spans_recorded,
        "disabled_span_ns_per_call": noop_ns,
    })

    if os.environ.get("SCORPION_BENCH_PERF_ASSERT", "1") == "0":
        return
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}%")
