"""Figure 16: DT cost with and without cross-c caching (Section 8.3.3).

The paper sweeps c downward (0.5 → 0) over a fixed query, reusing the
c-agnostic DT partitions and warm-starting the Merger from the previous
(higher-c) merge result.  Shapes asserted:

* total sweep time with caching is below the uncached sweep;
* after the first (cold) run, every cached run skips partitioning.
"""

import time

from repro.core.scorpion import Scorpion
from repro.eval import format_table

from benchmarks.conftest import (emit_bench_json, emit_report, run_once,
                                 synth_dataset)

C_SWEEP_DOWN = (0.5, 0.4, 0.3, 0.2, 0.1, 0.0)


def _sweep(dataset, use_cache: bool):
    scorpion = Scorpion(algorithm="dt", use_cache=use_cache)
    per_c = {}
    for c in C_SWEEP_DOWN:
        problem = dataset.scorpion_query(c=c)
        started = time.perf_counter()
        result = scorpion.explain(problem)
        per_c[c] = (time.perf_counter() - started, result.best)
    return per_c, scorpion


def _experiment(n_dims, difficulty):
    dataset = synth_dataset(n_dims, difficulty)
    cached, scorpion = _sweep(dataset, use_cache=True)
    uncached, _ = _sweep(dataset, use_cache=False)
    rows = []
    for c in C_SWEEP_DOWN:
        rows.append([c, round(uncached[c][0], 2), round(cached[c][0], 2)])
    total_uncached = sum(t for t, _ in uncached.values())
    total_cached = sum(t for t, _ in cached.values())
    return rows, total_uncached, total_cached, scorpion.cache


def _emit(name: str, title: str, rows, total_uncached, total_cached, cache):
    """Human-readable report + machine-readable BENCH_scorer.json rows."""
    table_rows = rows + [["total", round(total_uncached, 2),
                          round(total_cached, 2)]]
    emit_report(name, format_table(title, ["c", "no-cache", "cache"],
                                   table_rows))
    emit_bench_json(name, {
        "per_c": [{"c": c, "uncached_seconds": u, "cached_seconds": k}
                  for c, u, k in rows],
        "total_uncached_seconds": round(total_uncached, 4),
        "total_cached_seconds": round(total_cached, 4),
        "speedup": round(total_uncached / max(total_cached, 1e-9), 3),
        "partition_hits": cache.partition_hits,
        "partition_misses": cache.partition_misses,
    })


def test_fig16_caching_3d_easy(benchmark):
    rows, total_uncached, total_cached, cache = run_once(
        benchmark, lambda: _experiment(3, "easy"))
    _emit("fig16_caching_3d_easy",
          "Figure 16 (3D Easy) — per-c cost (s), no-cache vs cache",
          rows, total_uncached, total_cached, cache)
    assert total_cached < total_uncached
    assert cache.partition_misses == 1
    assert cache.partition_hits == len(C_SWEEP_DOWN) - 1


def test_fig16_caching_3d_hard(benchmark):
    rows, total_uncached, total_cached, cache = run_once(
        benchmark, lambda: _experiment(3, "hard"))
    _emit("fig16_caching_3d_hard",
          "Figure 16 (3D Hard) — per-c cost (s), no-cache vs cache",
          rows, total_uncached, total_cached, cache)
    assert total_cached < total_uncached
