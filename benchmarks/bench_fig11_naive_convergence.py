"""Figure 11: NAIVE's best-so-far accuracy as execution time grows, for
c ∈ {0, 0.1, 0.5} on SYNTH-2D-Hard.

The paper logs the incumbent predicate during the exhaustive search and
plots its accuracy against wall-clock time; NAIVE converges faster at
low c (the optimal predicate involves fewer attributes).  We replay the
convergence trace recorded by the partitioner and tabulate best-so-far
F-scores at fractions of the budget.
"""

from repro.core.naive import NaivePartitioner
from repro.eval import format_series, score_predicate

from benchmarks.conftest import NAIVE_BUDGET, emit_report, run_once

C_VALUES = (0.0, 0.1, 0.5)
# Early checkpoints are dense: at laptop scale NAIVE's big improvements
# land in the first fraction of the budget (the paper's 40-minute runs
# spread them out).
CHECKPOINT_FRACTIONS = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0)


def _best_f_at(trace, elapsed_limit, dataset, truth):
    best = None
    for point in trace:
        if point.elapsed <= elapsed_limit:
            best = point
    if best is None:
        return 0.0
    stats = score_predicate(best.predicate, dataset.table, truth,
                            dataset.outlier_row_indices())
    return round(stats.f_score, 3)


def _experiment(dataset):
    inner_series = {}
    outer_series = {}
    traces = {}
    for c in C_VALUES:
        problem = dataset.scorpion_query(c=c)
        result = NaivePartitioner(time_budget=NAIVE_BUDGET, n_bins=15).run(problem)
        label = f"c={c}"
        traces[label] = result.convergence
        inner_series[label] = {}
        outer_series[label] = {}
        for fraction in CHECKPOINT_FRACTIONS:
            limit = fraction * NAIVE_BUDGET
            inner_series[label][fraction] = _best_f_at(
                result.convergence, limit, dataset, dataset.truth_inner())
            outer_series[label][fraction] = _best_f_at(
                result.convergence, limit, dataset, dataset.truth_outer())
    return inner_series, outer_series, traces


def test_fig11_naive_convergence(benchmark, synth_2d_hard):
    inner, outer, traces = run_once(benchmark, lambda: _experiment(synth_2d_hard))
    emit_report("fig11_naive_convergence", "\n\n".join([
        format_series(
            "Figure 11 (left) — best-so-far F vs budget fraction, inner truth",
            inner, x_label="t/budget"),
        format_series(
            "Figure 11 (right) — best-so-far F vs budget fraction, outer truth",
            outer, x_label="t/budget"),
    ]))
    # Shape: the incumbent *influence* is monotone over time (the F-score
    # need not be — the paper notes influence and ground truth do not
    # perfectly correlate)...
    for label, trace in traces.items():
        influences = [point.influence for point in trace]
        assert influences == sorted(influences), label
    # ...and something useful is found within the budget at every c.
    for label, series in outer.items():
        assert series[1.0] > 0.3, f"{label} never found a useful predicate"
