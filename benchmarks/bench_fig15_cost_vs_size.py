"""Figure 15: runtime as the dataset grows (paper: 5k → 100k tuples,
c = 0.1, Easy datasets, per dimensionality).

The paper reports runtime roughly linear in the dataset size, with a
slope that grows with dimensionality.  We sweep the per-group tuple
count, time DT and MC, and assert the near-linear shape: runtime grows
with size but clearly sub-quadratically.
"""

from repro.eval import format_table
from repro.eval.runner import run_algorithm

from benchmarks.conftest import SCALE, emit_report, run_once, synth_dataset

GROUP_SIZES = (500, 1000, 2000) if SCALE == "quick" else (500, 2000, 5000, 10000)
DIMS = (2, 3)
C = 0.1


def _experiment():
    rows = []
    times: dict[tuple, float] = {}
    for n_dims in DIMS:
        for group_size in GROUP_SIZES:
            dataset = synth_dataset(n_dims, "easy", tuples_per_group=group_size)
            problem = dataset.scorpion_query(c=C)
            for name in ("dt", "mc"):
                record = run_algorithm(name, problem)
                times[(n_dims, group_size, name)] = record.runtime
                rows.append([f"{n_dims}D", group_size * 10, name,
                             round(record.runtime, 2)])
    return rows, times


def test_fig15_cost_vs_size(benchmark):
    rows, times = run_once(benchmark, _experiment)
    emit_report("fig15_cost_vs_size", format_table(
        f"Figure 15 — runtime (s) vs total tuples (Easy, c = {C})",
        ["dims", "tuples", "algorithm", "seconds"], rows))
    smallest, largest = GROUP_SIZES[0], GROUP_SIZES[-1]
    scale_factor = largest / smallest
    for n_dims in DIMS:
        for name in ("dt", "mc"):
            small_t = max(times[(n_dims, smallest, name)], 1e-3)
            big_t = times[(n_dims, largest, name)]
            # Sub-quadratic growth: time ratio well under size-ratio².
            assert big_t / small_t < scale_factor ** 2 * 2, (
                f"{name} {n_dims}D grew {big_t / small_t:.1f}x "
                f"on a {scale_factor:.0f}x size increase")
