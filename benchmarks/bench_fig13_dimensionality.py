"""Figure 13: F-score as the dataset dimensionality grows (2D → 4D),
Easy and Hard, all three algorithms.

The paper's shape: DT and MC remain competitive with NAIVE as dimensions
increase — and can even beat it, because NAIVE's fixed 15-bin grid (and
its budget) limits the granularity it can reach, while DT refines splits
freely.  We assert competitiveness at every dimensionality.
"""

from repro.eval import format_table
from repro.eval.runner import run_algorithm

from benchmarks.conftest import (
    C_SWEEP_SHORT,
    NAIVE_BUDGET,
    emit_report,
    run_once,
    synth_dataset,
)

DIMS = (2, 3, 4)
ALGORITHMS = ("naive", "dt", "mc")


def _experiment(difficulty: str):
    rows = []
    best_by_dim: dict[int, dict[str, float]] = {}
    for n_dims in DIMS:
        dataset = synth_dataset(n_dims, difficulty)
        best_by_dim[n_dims] = {}
        for name in ALGORITHMS:
            best_f = 0.0
            best_c = None
            for c in C_SWEEP_SHORT:
                problem = dataset.scorpion_query(c=c)
                kwargs = {"time_budget": NAIVE_BUDGET} if name == "naive" else {}
                record = run_algorithm(
                    name, problem,
                    table=dataset.table,
                    truth_mask=dataset.truth_outer(),
                    outlier_rows=dataset.outlier_row_indices(),
                    **kwargs)
                if record.f_score >= best_f:
                    best_f, best_c = record.f_score, c
            rows.append([f"{n_dims}D", name, best_c, round(best_f, 3)])
            best_by_dim[n_dims][name] = best_f
    return rows, best_by_dim


def _assert_competitive(best_by_dim):
    for n_dims, scores in best_by_dim.items():
        for name in ("dt", "mc"):
            assert scores[name] >= scores["naive"] - 0.2, (
                f"{name} at {n_dims}D: {scores[name]} vs naive {scores['naive']}")


def test_fig13_easy(benchmark):
    rows, best = run_once(benchmark, lambda: _experiment("easy"))
    emit_report("fig13_dimensionality_easy", format_table(
        "Figure 13 (Easy) — best F-score over the c sweep, by dimensionality",
        ["dims", "algorithm", "best c", "best F"], rows))
    _assert_competitive(best)


def test_fig13_hard(benchmark):
    rows, best = run_once(benchmark, lambda: _experiment("hard"))
    emit_report("fig13_dimensionality_hard", format_table(
        "Figure 13 (Hard) — best F-score over the c sweep, by dimensionality",
        ["dims", "algorithm", "best c", "best F"], rows))
    _assert_competitive(best)
