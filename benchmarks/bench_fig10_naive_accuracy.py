"""Figure 10: NAIVE precision / recall / F-score as c varies, scored
against both the inner- and outer-cube ground truths, on SYNTH-2D-Easy
and SYNTH-2D-Hard.

Shapes the paper reports and we assert:

* the outer-truth F-score peaks at a *lower* c than the inner-truth
  F-score (coarse boxes match the outer cube; selective boxes the inner);
* outer-truth precision rises quickly with c;
* inner-truth recall is maximized at low c and falls as c grows.
"""

import numpy as np

from repro.eval import format_series, score_predicate
from repro.eval.runner import run_algorithm

from benchmarks.conftest import C_SWEEP, NAIVE_BUDGET, emit_report, run_once


def _experiment(dataset):
    series = {"outer P": {}, "outer R": {}, "outer F": {},
              "inner P": {}, "inner R": {}, "inner F": {}}
    for c in C_SWEEP:
        problem = dataset.scorpion_query(c=c)
        record = run_algorithm("naive", problem, time_budget=NAIVE_BUDGET,
                               n_bins=15)
        for truth_name, truth in (("outer", dataset.truth_outer()),
                                  ("inner", dataset.truth_inner())):
            stats = score_predicate(record.predicate, dataset.table, truth,
                                    dataset.outlier_row_indices())
            series[f"{truth_name} P"][c] = round(stats.precision, 3)
            series[f"{truth_name} R"][c] = round(stats.recall, 3)
            series[f"{truth_name} F"][c] = round(stats.f_score, 3)
    return series


def _peak_c(series: dict) -> float:
    return max(series, key=lambda c: series[c])


def test_fig10_easy(benchmark, synth_2d_easy):
    series = run_once(benchmark, lambda: _experiment(synth_2d_easy))
    emit_report("fig10_naive_accuracy_easy", format_series(
        "Figure 10 (left) — NAIVE accuracy vs c, SYNTH-2D-Easy",
        series, x_label="c"))
    assert _peak_c(series["outer F"]) <= _peak_c(series["inner F"])
    assert series["inner R"][min(C_SWEEP)] >= max(series["inner R"].values()) - 1e-9


def test_fig10_hard(benchmark, synth_2d_hard):
    series = run_once(benchmark, lambda: _experiment(synth_2d_hard))
    emit_report("fig10_naive_accuracy_hard", format_series(
        "Figure 10 (right) — NAIVE accuracy vs c, SYNTH-2D-Hard",
        series, x_label="c"))
    assert _peak_c(series["outer F"]) <= _peak_c(series["inner F"])
    # Outer precision improves from its c = 0 level as c increases.
    outer_p = series["outer P"]
    assert max(outer_p[c] for c in C_SWEEP[1:]) >= outer_p[0.0]
    assert np.isfinite(list(outer_p.values())).all()
