"""Ablation: deletion vs mean-imputation influence (the Section 3.2
footnote's alternative formulation, implemented as an extension).

Both modes should recover the same qualitative explanation on the INTEL
workload — the failing sensor — while reporting different Δ magnitudes
(imputation moves values to the mean instead of dropping them, so its
deltas are smaller but similarly ranked).
"""

from repro.core.scorpion import Scorpion
from repro.datasets import make_intel
from repro.eval import format_table, score_predicate

from benchmarks.conftest import emit_report, run_once


def _experiment():
    dataset = make_intel(1, readings_per_sensor_hour=4)
    rows = []
    f_scores = {}
    for mode in ("delete", "mean"):
        problem = dataset.scorpion_query(c=0.5)
        problem = type(problem)(
            table=dataset.table, query=dataset.query(),
            outliers=dataset.outlier_keys, holdouts=dataset.holdout_keys,
            error_vectors=+1.0, c=0.5,
            attributes=("sensorid", "voltage", "humidity", "light"),
            perturbation=mode)
        result = Scorpion(algorithm="dt").explain(problem)
        best = result.best
        stats = score_predicate(best.predicate, dataset.table,
                                dataset.failure_mask,
                                dataset.outlier_row_indices())
        rows.append([mode, str(best.predicate), round(best.influence, 3),
                     round(stats.f_score, 3), round(result.elapsed, 2)])
        f_scores[mode] = stats.f_score
    return rows, f_scores


def test_perturbation_modes_agree(benchmark):
    rows, f_scores = run_once(benchmark, _experiment)
    emit_report("ablation_perturbation", format_table(
        "Ablation — delete vs mean-imputation influence (INTEL w1, c = 0.5)",
        ["perturbation", "predicate", "influence", "F vs failure rows",
         "seconds"], rows))
    assert f_scores["delete"] > 0.9
    assert f_scores["mean"] > 0.9
