"""Figure 12: DT / MC / NAIVE accuracy as c varies (SYNTH-2D, outer
ground truth).

The paper's takeaway — both fast algorithms generate results comparable
to the exhaustive NAIVE baseline, with similar maximum F-scores — is the
shape we assert: across the c sweep, DT's and MC's best F-scores come
within 0.15 of NAIVE's.
"""

from repro.eval import format_series
from repro.eval.runner import run_algorithm

from benchmarks.conftest import C_SWEEP, NAIVE_BUDGET, emit_report, run_once

ALGORITHMS = ("naive", "dt", "mc")


def _experiment(dataset):
    series = {name: {} for name in ALGORITHMS}
    for c in C_SWEEP:
        problem = dataset.scorpion_query(c=c)
        for name in ALGORITHMS:
            kwargs = {"time_budget": NAIVE_BUDGET} if name == "naive" else {}
            record = run_algorithm(
                name, problem,
                table=dataset.table,
                truth_mask=dataset.truth_outer(),
                outlier_rows=dataset.outlier_row_indices(),
                **kwargs)
            series[name][c] = round(record.f_score, 3)
    return series


def _assert_comparable(series):
    naive_best = max(series["naive"].values())
    for name in ("dt", "mc"):
        best = max(series[name].values())
        assert best >= naive_best - 0.15, (
            f"{name} best F {best} vs naive {naive_best}")


def test_fig12_easy(benchmark, synth_2d_easy):
    series = run_once(benchmark, lambda: _experiment(synth_2d_easy))
    emit_report("fig12_accuracy_vs_c_easy", format_series(
        "Figure 12 (left) — F-score vs c, SYNTH-2D-Easy, outer truth",
        series, x_label="c"))
    _assert_comparable(series)


def test_fig12_hard(benchmark, synth_2d_hard):
    series = run_once(benchmark, lambda: _experiment(synth_2d_hard))
    emit_report("fig12_accuracy_vs_c_hard", format_series(
        "Figure 12 (right) — F-score vs c, SYNTH-2D-Hard, outer truth",
        series, x_label="c"))
    _assert_comparable(series)
